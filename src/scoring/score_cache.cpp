#include "scoring/score_cache.h"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace metadock::scoring {
namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ScoreCache::ScoreCache(ScoreCacheOptions options) : options_(options) {
  if (options_.capacity == 0) throw std::invalid_argument("ScoreCache: capacity must be > 0");
  if (options_.shards == 0) throw std::invalid_argument("ScoreCache: shards must be > 0");
  if (!(options_.quantum > 0.0f)) throw std::invalid_argument("ScoreCache: quantum must be > 0");
  if (options_.max_probe == 0) throw std::invalid_argument("ScoreCache: max_probe must be > 0");
  const std::size_t shard_count = round_up_pow2(options_.shards);
  std::size_t per_shard = (options_.capacity + shard_count - 1) / shard_count;
  per_shard = round_up_pow2(per_shard);
  shard_mask_ = shard_count - 1;
  slot_mask_ = per_shard - 1;
  shards_ = std::vector<Shard>(shard_count);
  for (Shard& s : shards_) {
    // No other thread can see the cache yet, but taking the capability is
    // free here and keeps the guarded-access proof unconditional.
    util::ScopedSpinLock guard(s.lock);
    s.slots.resize(per_shard);
  }
}

ScoreCache::Key ScoreCache::key_of(const Pose& pose) {
  return {std::bit_cast<std::uint32_t>(pose.position.x),
          std::bit_cast<std::uint32_t>(pose.position.y),
          std::bit_cast<std::uint32_t>(pose.position.z),
          std::bit_cast<std::uint32_t>(pose.orientation.w),
          std::bit_cast<std::uint32_t>(pose.orientation.x),
          std::bit_cast<std::uint32_t>(pose.orientation.y),
          std::bit_cast<std::uint32_t>(pose.orientation.z)};
}

std::uint64_t ScoreCache::hash_of(const Pose& pose) const {
  // Quantize each coordinate to a grid cell before hashing so that
  // near-identical poses cluster (they share a bucket neighbourhood and
  // evict each other first).  llround is exact and deterministic; the
  // inverse quantum keeps this a multiply in the hot path.
  const float inv_q = 1.0f / options_.quantum;
  const float c[7] = {pose.position.x,    pose.position.y,    pose.position.z,
                      pose.orientation.w, pose.orientation.x, pose.orientation.y,
                      pose.orientation.z};
  std::uint64_t h = options_.seed;
  for (const float v : c) {
    const auto cell = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llround(static_cast<double>(v) * inv_q)));
    h = util::hash_combine(h, cell);
  }
  return h;
}

bool ScoreCache::lookup(const Pose& pose, double* out) {
  const std::uint64_t h = hash_of(pose);
  const Key key = key_of(pose);
  Shard& shard = shard_for(h);
  util::ScopedSpinLock guard(shard.lock);
  for (std::size_t probe = 0; probe < options_.max_probe; ++probe) {
    Entry& e = shard.slots[(h + probe) & slot_mask_];
    if (!e.occupied) break;  // linear probing never leaves holes mid-chain
    if (e.key == key) {
      *out = e.score;
      ++shard.hits;
      return true;
    }
  }
  ++shard.misses;
  return false;
}

void ScoreCache::insert(const Pose& pose, double score) {
  const std::uint64_t h = hash_of(pose);
  const Key key = key_of(pose);
  Shard& shard = shard_for(h);
  util::ScopedSpinLock guard(shard.lock);
  for (std::size_t probe = 0; probe < options_.max_probe; ++probe) {
    Entry& e = shard.slots[(h + probe) & slot_mask_];
    if (!e.occupied || e.key == key) {
      if (!e.occupied) ++shard.entries;
      e.key = key;
      e.score = score;
      e.occupied = true;
      ++shard.inserts;
      return;
    }
  }
  // Probe window exhausted: overwrite the home slot.  Deterministic, and
  // biased towards keeping the most recent pose — local search revisits
  // recent conformations far more than ancient ones.
  Entry& home = shard.slots[h & slot_mask_];
  home.key = key;
  home.score = score;
  home.occupied = true;
  ++shard.inserts;
  ++shard.evictions;
}

void ScoreCache::clear() {
  for (Shard& shard : shards_) {
    util::ScopedSpinLock guard(shard.lock);
    for (Entry& e : shard.slots) e = Entry{};
    shard.hits = shard.misses = shard.inserts = shard.evictions = 0;
    shard.entries = 0;
  }
}

ScoreCacheStats ScoreCache::stats() const {
  ScoreCacheStats total;
  total.shards = shards_.size();
  total.capacity = shards_.size() * (slot_mask_ + 1);
  for (const Shard& shard : shards_) {
    util::ScopedSpinLock guard(shard.lock);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.inserts += shard.inserts;
    total.evictions += shard.evictions;
    total.entries += shard.entries;
  }
  return total;
}

}  // namespace metadock::scoring
