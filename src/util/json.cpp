#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace metadock::util {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == 'o') {
    throw std::logic_error("JsonWriter: value emitted where a key is required");
  }
  if (need_comma_) out_ += ',';
  if (!stack_.empty() && stack_.back() == 'v') {
    stack_.back() = 'o';  // the pending key now has its value
    need_comma_ = true;
    return;
  }
  need_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('o');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || (stack_.back() != 'o')) {
    throw std::logic_error("JsonWriter: end_object without open object");
  }
  stack_.pop_back();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('a');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a') {
    throw std::logic_error("JsonWriter: end_array without open array");
  }
  stack_.pop_back();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (need_comma_) out_ += ',';
  out_ += '"' + escape(name) + "\":";
  stack_.back() = 'v';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"' + escape(v) + '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: document has unclosed containers");
  }
  return out_;
}

}  // namespace metadock::util
