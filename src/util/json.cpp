#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace metadock::util {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == 'o') {
    throw std::logic_error("JsonWriter: value emitted where a key is required");
  }
  if (need_comma_) out_ += ',';
  if (!stack_.empty() && stack_.back() == 'v') {
    stack_.back() = 'o';  // the pending key now has its value
    need_comma_ = true;
    return;
  }
  need_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('o');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || (stack_.back() != 'o')) {
    throw std::logic_error("JsonWriter: end_object without open object");
  }
  stack_.pop_back();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('a');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a') {
    throw std::logic_error("JsonWriter: end_array without open array");
  }
  stack_.pop_back();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (need_comma_) out_ += ',';
  out_ += '"' + escape(name) + "\":";
  stack_.back() = 'v';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"' + escape(v) + '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value_exact(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  // Shortest decimal that survives a strtod roundtrip: most values need 15
  // or 16 significant digits; 17 always suffices for IEEE-754 double.
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ += buf;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: document has unclosed containers");
  }
  return out_;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent parser over a string_view; depth-capped so adversarial
/// nesting cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at offset " + std::to_string(pos_) + ": " + what,
                         pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(members));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue::Array items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(items));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // The writer only emits \u00XX for control bytes; decode the BMP
          // as UTF-8 so foreign documents survive too (no surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    // strtod needs a NUL-terminated buffer; numbers are short.
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).parse_document(); }

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) throw std::logic_error("JsonValue: not a number");
  return number_;
}

std::int64_t JsonValue::as_int64() const {
  const double v = as_double();
  const auto i = static_cast<std::int64_t>(v);
  if (static_cast<double>(i) != v) throw std::logic_error("JsonValue: not an integer");
  return i;
}

std::uint64_t JsonValue::as_uint64() const {
  const std::int64_t i = as_int64();
  if (i < 0) throw std::logic_error("JsonValue: negative where unsigned expected");
  return static_cast<std::uint64_t>(i);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::logic_error("JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw std::logic_error("JsonValue: not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw std::logic_error("JsonValue: not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::out_of_range("JsonValue: missing key '" + std::string(key) + "'");
  return *v;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

std::string JsonValue::string_or(std::string_view key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

}  // namespace metadock::util
