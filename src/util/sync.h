// Capability-annotated synchronization wrappers (DESIGN.md §16).
//
// Every lock in src/ goes through these types instead of the raw standard
// primitives (enforced by metadock-lint MDL010): the wrappers carry the
// clang Thread Safety Analysis attributes from util/thread_annotations.h,
// so `clang++ -Wthread-safety` can prove — at compile time, before any
// schedule runs — that every `GUARDED_BY` member is only touched under
// its capability.  TSan (the `tsan` preset) still runs as the dynamic
// backstop; this layer is the static first line of defense.
//
// The runtime behavior is exactly the primitive each wrapper wraps: Mutex
// is std::mutex, SpinLock is the acquire/release atomic_flag spin of the
// score cache, CondVar is std::condition_variable.  `Serial` is the one
// purely static capability: a zero-byte "role" token for the
// single-owner subsystems (batch scorer, cluster sim, job server) whose
// state is thread-compatible, not thread-safe — acquiring it compiles to
// nothing, but the analysis then rejects any access to their
// `GUARDED_BY(serial_)` bookkeeping from outside an entry point that
// claimed ownership.
#pragma once

// This header IS the sanctioned wrapper layer over the raw primitives, so
// metadock-lint exempts it from MDL010 by path.
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace metadock::util {

/// std::mutex with the `mutex` capability.  Prefer ScopedLock; call
/// lock()/unlock() directly only where RAII cannot express the protocol.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped primitive, for CondVar only — going through it anywhere
  /// else would blind the analysis.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Test-and-set spinlock with the `mutex` capability: the score cache's
/// shard lock (DESIGN.md §12.3).  acquire/release ordering publishes every
/// write made under the lock to the next holder.
class CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() ACQUIRE() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Spin: shard critical sections are a handful of loads/stores, so a
      // blocked thread is microseconds from the lock.
    }
  }
  void unlock() RELEASE() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII lock for Mutex.  `unlock()` supports the unlock-before-notify /
/// unlock-before-rethrow protocols; the destructor releases only when
/// still owning.
class SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ScopedLock() RELEASE() {
    if (owns_) mu_.unlock();
  }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

  /// Early release (e.g. drop the lock before notifying a condvar).
  void unlock() RELEASE() {
    mu_.unlock();
    owns_ = false;
  }

 private:
  Mutex& mu_;
  bool owns_ = true;
};

/// RAII lock for SpinLock.
class SCOPED_CAPABILITY ScopedSpinLock {
 public:
  explicit ScopedSpinLock(SpinLock& lock) ACQUIRE(lock) : lock_(lock) { lock_.lock(); }
  ~ScopedSpinLock() RELEASE() { lock_.unlock(); }
  ScopedSpinLock(const ScopedSpinLock&) = delete;
  ScopedSpinLock& operator=(const ScopedSpinLock&) = delete;

 private:
  SpinLock& lock_;
};

/// Condition variable bound to util::Mutex.  wait() takes the Mutex the
/// caller already holds (REQUIRES makes the analysis check that) and
/// returns with it re-held; use the classic `while (!pred) cv.wait(mu);`
/// shape — a predicate lambda would be analyzed without the capability.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the held lock for the wait, then hand ownership back without
    // unlocking: from the caller's (and the analysis') view the mutex is
    // held across the call.
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Zero-cost "single owner" role capability.  The virtual-clock
/// subsystems (MultiGpuBatchScorer, the cluster CampaignSim, JobServer)
/// are deliberately lock-free: one logical owner drives them and their
/// determinism contract forbids internal concurrency.  Serial turns that
/// prose contract into a checked one — bookkeeping members are
/// `GUARDED_BY(serial_)`, entry points take a ScopedSerial, internal
/// helpers are `REQUIRES(serial_)` — so a future refactor that leaks
/// state across that boundary (a callback capturing bookkeeping, a new
/// public accessor called mid-dispatch) fails to compile under clang
/// instead of racing under load.  Acquire/release compile to nothing.
class CAPABILITY("role") Serial {
 public:
  Serial() = default;
  Serial(const Serial&) = delete;
  Serial& operator=(const Serial&) = delete;

  void acquire() ACQUIRE() {}
  void release() RELEASE() {}
};

/// RAII ownership claim for a Serial role.
class SCOPED_CAPABILITY ScopedSerial {
 public:
  explicit ScopedSerial(Serial& role) ACQUIRE(role) : role_(role) { role_.acquire(); }
  ~ScopedSerial() RELEASE() { role_.release(); }
  ScopedSerial(const ScopedSerial&) = delete;
  ScopedSerial& operator=(const ScopedSerial&) = delete;

 private:
  Serial& role_;
};

}  // namespace metadock::util
