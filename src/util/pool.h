// Bump-pointer arena allocation for the metaheuristic hot loop.
//
// The generation loop (meta/engine.cpp) and the per-batch dispatch paths
// (scoring/batch_engine.cpp, sched/multi_gpu.cpp) used to lean on
// std::vector for every piece of transient state: pose staging buffers,
// rotated-coordinate scratch, split bookkeeping.  Each of those is a
// malloc/free pair per generation (or per batch), and on the paper's
// workload shapes the allocator shows up before the FLOPs do once the
// SIMD kernels are in place.  An arena turns all of that into pointer
// bumps against memory that is allocated once and recycled for the whole
// run.
//
// Design constraints, in order:
//   1. *Thread confinement.*  An Arena is owned by exactly one thread.
//      There is no internal locking; cross-thread sharing is a bug.  The
//      `thread_arena()` accessor hands each thread its own arena, which
//      makes "arena reset racing a reader on another thread" impossible
//      by construction rather than by synchronization (see DESIGN.md
//      §12.1 and the stress suite).
//   2. *Trivial types only.*  `make_span<T>` static_asserts trivial
//      destructibility: reset()/rewind() never run destructors, so
//      nothing that owns resources may live in an arena.
//   3. *Deterministic contents.*  Fresh spans are zero-filled, so a
//      value read before first write is 0 in every build mode instead of
//      whatever the previous generation left behind.  (Determinism
//      beats the memset cost here; buffers are overwritten immediately
//      in the hot paths anyway.)
//
// Lifetime idioms:
//   - Arena::reset()           — generation-scoped: rewind everything,
//                                keep the chunks.
//   - ArenaScope guard(arena)  — LIFO scope (per batch / per call):
//                                rewinds to the mark on destruction.
//   - ArenaVector<T>           — fixed-capacity vector carved from an
//                                arena; push_back past capacity throws
//                                (it never reallocates, so it can never
//                                move memory out from under a span).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace metadock::util {

class Arena {
 public:
  /// `chunk_bytes` is the granularity of backing allocations; oversized
  /// requests get a dedicated chunk of exactly the requested size.
  explicit Arena(std::size_t chunk_bytes = std::size_t{1} << 20) : chunk_bytes_(chunk_bytes) {
    if (chunk_bytes_ == 0) throw std::invalid_argument("Arena: chunk_bytes must be > 0");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Position of the bump pointer; pass to rewind() for LIFO release.
  struct Marker {
    std::size_t chunk = 0;
    std::size_t offset = 0;
  };

  /// Raw aligned allocation.  Never returns nullptr; throws bad_alloc on
  /// OOM like operator new.  Bytes are NOT zeroed here (make_span zeroes).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;  // keep results distinct / non-null
    while (true) {
      if (chunk_ < chunks_.size()) {
        Chunk& c = chunks_[chunk_];
        const std::size_t base = reinterpret_cast<std::size_t>(c.data.get());
        const std::size_t aligned = round_up(base + offset_, align) - base;
        if (aligned + bytes <= c.size) {
          offset_ = aligned + bytes;
          peak_used_ = std::max(peak_used_, used_before_ + offset_);
          return c.data.get() + aligned;
        }
      }
      advance_chunk(bytes + align);
    }
  }

  /// Typed zero-filled span.  The static_assert is the arena's safety
  /// contract: reset() runs no destructors.
  template <typename T>
  std::span<T> make_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    static_assert(std::is_trivially_copyable_v<T>, "arena spans hold plain data");
    if (n == 0) return {};
    auto* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    std::memset(static_cast<void*>(p), 0, n * sizeof(T));
    return {p, n};
  }

  /// Rewind everything; backing chunks are kept for reuse.
  void reset() {
    used_before_ = 0;
    chunk_ = 0;
    offset_ = 0;
    ++resets_;
  }

  [[nodiscard]] Marker mark() const { return {chunk_, offset_}; }

  /// LIFO rewind to a marker obtained from mark().  Anything allocated
  /// after the marker is invalidated.
  void rewind(Marker m) {
    chunk_ = m.chunk;
    offset_ = m.offset;
    used_before_ = 0;
    for (std::size_t i = 0; i < chunk_ && i < chunks_.size(); ++i) used_before_ += chunks_[i].size;
  }

  /// Bytes currently handed out (high-water within this reset is peak_bytes).
  [[nodiscard]] std::size_t used_bytes() const { return used_before_ + offset_; }
  /// Total bytes of backing memory held (never shrinks until destruction).
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  [[nodiscard]] std::size_t peak_bytes() const { return peak_used_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::uint64_t reset_count() const { return resets_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) / align * align;
  }

  void advance_chunk(std::size_t min_bytes) {
    if (chunk_ < chunks_.size()) {
      used_before_ += chunks_[chunk_].size;
      ++chunk_;
      offset_ = 0;
      if (chunk_ < chunks_.size() && chunks_[chunk_].size >= min_bytes) return;
    }
    if (chunk_ >= chunks_.size()) {
      const std::size_t size = std::max(chunk_bytes_, min_bytes);
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
      offset_ = 0;
    }
    // If the existing next chunk is too small for min_bytes the loop in
    // allocate() advances again, so a pathological rewind/alloc pattern
    // still terminates: eventually chunk_ walks off the end and a fresh,
    // large-enough chunk is appended.
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;        // current chunk index (may be == chunks_.size())
  std::size_t offset_ = 0;       // bump offset within current chunk
  std::size_t used_before_ = 0;  // sum of sizes of chunks before chunk_
  std::size_t peak_used_ = 0;
  std::uint64_t resets_ = 0;
};

/// RAII LIFO scope: rewinds the arena to its construction-time mark.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Marker mark_;
};

/// Fixed-capacity vector whose storage lives in an arena.  It never
/// reallocates: push_back past capacity throws std::length_error, which
/// turns "forgot to size the buffer" into a deterministic failure instead
/// of a silent heap allocation in the hot loop.
template <typename T>
class ArenaVector {
 public:
  ArenaVector() = default;
  ArenaVector(Arena& arena, std::size_t capacity) { bind(arena, capacity); }

  /// (Re)carve storage for `capacity` elements; size resets to 0.
  void bind(Arena& arena, std::size_t capacity) {
    storage_ = arena.make_span<T>(capacity);
    size_ = 0;
  }

  void push_back(const T& v) {
    if (size_ >= storage_.size()) throw std::length_error("ArenaVector: capacity exceeded");
    storage_[size_++] = v;
  }

  void clear() { size_ = 0; }

  /// Worklist idiom (see sched/multi_gpu.cpp): back()/pop_back() mirror
  /// std::vector so a pending-slice stack drops in without heap churn.
  [[nodiscard]] T& back() { return storage_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return storage_[size_ - 1]; }
  void pop_back() {
    if (size_ == 0) throw std::length_error("ArenaVector: pop_back on empty");
    --size_;
  }

  /// Grow-or-shrink within capacity; new elements are zero (make_span
  /// zero-fills and clear()/shrink never scrambles the tail... but a
  /// shrink+regrow would expose stale values, so re-zero on grow).
  void set_size(std::size_t n) {
    if (n > storage_.size()) throw std::length_error("ArenaVector: capacity exceeded");
    if (n > size_) std::memset(static_cast<void*>(storage_.data() + size_), 0, (n - size_) * sizeof(T));
    size_ = n;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return storage_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return storage_[i]; }
  const T& operator[](std::size_t i) const { return storage_[i]; }
  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }
  T* begin() { return storage_.data(); }
  T* end() { return storage_.data() + size_; }
  const T* begin() const { return storage_.data(); }
  const T* end() const { return storage_.data() + size_; }

  [[nodiscard]] std::span<T> span() { return storage_.subspan(0, size_); }
  [[nodiscard]] std::span<const T> span() const { return storage_.subspan(0, size_); }

 private:
  std::span<T> storage_{};
  std::size_t size_ = 0;
};

/// Per-thread scratch arena.  Thread confinement is the whole safety
/// story: no lock, no atomics, and no way for another thread to observe
/// a reset.  Callers pair it with ArenaScope so nested users compose.
inline Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace metadock::util
