// ASCII table / CSV rendering for the benchmark harness.  Every bench binary
// prints the same rows the paper's tables report, so keeping formatting in
// one place keeps outputs comparable.
#pragma once

#include <string>
#include <vector>

namespace metadock::util {

/// Column-aligned text table with an optional title.  Cells are strings;
/// numeric helpers format with fixed precision, matching the paper's style
/// (two decimals for seconds and speed-up factors).
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  /// Formats a double with `decimals` digits after the point.
  static std::string num(double v, int decimals = 2);

  /// Renders with box-drawing separators.
  [[nodiscard]] std::string str() const;

  /// Renders as CSV (header first if present).
  [[nodiscard]] std::string csv() const;

  /// Convenience: print to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace metadock::util
