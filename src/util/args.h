// Minimal command-line argument parser for the metadock CLI tool.
// Supports `--key value`, `--key=value`, bare `--flag`, and positionals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace metadock::util {

class ArgParser {
 public:
  /// Parses argv[1..).  Throws std::invalid_argument on a dangling
  /// `--key` that expects a value (i.e. `--key` as the last token is
  /// treated as a flag, never an error).
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const { return options_.contains(key); }

  /// Value of --key, or fallback when absent.  A bare flag yields "".
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get(const std::string& key, std::int64_t fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const { return positionals_; }

  /// Keys that were passed but are not in `known` (for usage errors).
  [[nodiscard]] std::vector<std::string> unknown_keys(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positionals_;
};

}  // namespace metadock::util
