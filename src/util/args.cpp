#include "util/args.h"

#include <algorithm>
#include <stdexcept>

namespace metadock::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positionals_.push_back(tok);
      continue;
    }
    const std::string body = tok.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";  // bare flag
    }
  }
}

std::string ArgParser::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it != options_.end() ? it->second : fallback;
}

double ArgParser::get(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("argument --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

std::int64_t ArgParser::get(const std::string& key, std::int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("argument --" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

std::vector<std::string> ArgParser::unknown_keys(const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) out.push_back(key);
  }
  return out;
}

}  // namespace metadock::util
