// Tiny leveled logger.  Verbosity is read once from METADOCK_LOG
// (error|warn|info|debug); default is warn so tests and benches stay quiet.
#pragma once

#include <cstdio>
#include <string>

namespace metadock::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current verbosity (from METADOCK_LOG at first use).
LogLevel log_level();

/// Overrides verbosity for the process (mainly for tests).
void set_log_level(LogLevel level);

namespace detail {
void vlog(LogLevel level, const char* tag, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;
}  // namespace detail

#define METADOCK_LOG_AT(level, tag, ...)                              \
  do {                                                                \
    if (static_cast<int>(level) <=                                    \
        static_cast<int>(::metadock::util::log_level())) {            \
      ::metadock::util::detail::vlog(level, tag, __VA_ARGS__);        \
    }                                                                 \
  } while (0)

#define LOG_ERROR(...) METADOCK_LOG_AT(::metadock::util::LogLevel::kError, "E", __VA_ARGS__)
#define LOG_WARN(...) METADOCK_LOG_AT(::metadock::util::LogLevel::kWarn, "W", __VA_ARGS__)
#define LOG_INFO(...) METADOCK_LOG_AT(::metadock::util::LogLevel::kInfo, "I", __VA_ARGS__)
#define LOG_DEBUG(...) METADOCK_LOG_AT(::metadock::util::LogLevel::kDebug, "D", __VA_ARGS__)

}  // namespace metadock::util
