#include "util/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace metadock::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    ScopedLock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    ScopedLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  ScopedLock lock(mu_);
  while (in_flight_ != 0) cv_idle_.wait(mu_);
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

namespace {
// True on threads that are themselves pool workers: a nested parallel_for
// would deadlock in wait_idle (its own task counts as in-flight), so nested
// calls degrade to inline execution instead.
thread_local bool t_inside_pool_worker = false;
}  // namespace

namespace {
// Completion state owned by one parallel_for() call.  Heap-allocated and
// shared with the tasks so the state outlives whichever side finishes last;
// keeping it per-call (instead of reusing the pool-global in_flight_ /
// first_error_) is what makes concurrent parallel_for() calls independent:
// with the global counter, caller A's wait could block on caller B's tasks,
// and a wait_idle() on another thread could steal the exception A's fn
// threw.  `remaining`/`error` are guarded by the call's own capability.
struct ForCall {
  Mutex mu;
  CondVar cv;
  std::size_t remaining GUARDED_BY(mu) = 0;
  std::exception_ptr error GUARDED_BY(mu);
};
}  // namespace

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (t_inside_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  auto call = std::make_shared<ForCall>();
  {
    // No worker can hold the call yet (nothing is submitted), but the
    // analysis neither knows nor cares: initialization happens under the
    // capability like every other access.
    ScopedLock lock(call->mu);
    call->remaining = (n + chunk - 1) / chunk;
  }
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    // &fn stays valid: the caller blocks below until remaining hits zero,
    // which each task only signals after its last use of fn.
    submit([call, lo, hi, &fn] {
      std::exception_ptr err;
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      bool last = false;
      {
        ScopedLock lock(call->mu);
        if (err && !call->error) call->error = err;
        last = (--call->remaining == 0);
      }
      if (last) call->cv.notify_all();
    });
  }
  ScopedLock lock(call->mu);
  while (call->remaining != 0) call->cv.wait(call->mu);
  if (call->error) {
    std::exception_ptr err = call->error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      ScopedLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_task_.wait(mu_);
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    {
      // RAII so in_flight_ reaches zero even when the task throws —
      // otherwise wait_idle() would hang forever on the lost decrement.
      struct InFlightGuard {
        ThreadPool& pool;
        ~InFlightGuard() {
          bool idle = false;
          {
            ScopedLock lock(pool.mu_);
            idle = (--pool.in_flight_ == 0);
          }
          if (idle) pool.cv_idle_.notify_all();
        }
      } guard{*this};
      try {
        task();
      } catch (...) {
        // Keep the worker alive (an escaped exception would std::terminate
        // the process); the first error is replayed at the next wait_idle.
        ScopedLock lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
}

}  // namespace metadock::util
