#include "util/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace metadock::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

namespace {
// True on threads that are themselves pool workers: a nested parallel_for
// would deadlock in wait_idle (its own task counts as in-flight), so nested
// calls degrade to inline execution instead.
thread_local bool t_inside_pool_worker = false;
}  // namespace

namespace {
// Completion state owned by one parallel_for() call.  Heap-allocated and
// shared with the tasks so the state outlives whichever side finishes last;
// keeping it per-call (instead of reusing the pool-global in_flight_ /
// first_error_) is what makes concurrent parallel_for() calls independent:
// with the global counter, caller A's wait could block on caller B's tasks,
// and a wait_idle() on another thread could steal the exception A's fn
// threw.
struct ForCall {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = 0;
  std::exception_ptr error;
};
}  // namespace

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (t_inside_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  auto call = std::make_shared<ForCall>();
  call->remaining = (n + chunk - 1) / chunk;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    // &fn stays valid: the caller blocks below until remaining hits zero,
    // which each task only signals after its last use of fn.
    submit([call, lo, hi, &fn] {
      std::exception_ptr err;
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::unique_lock lock(call->mu);
      if (err && !call->error) call->error = err;
      if (--call->remaining == 0) {
        lock.unlock();
        call->cv.notify_all();
      }
    });
  }
  std::unique_lock lock(call->mu);
  call->cv.wait(lock, [&] { return call->remaining == 0; });
  if (call->error) std::rethrow_exception(call->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    {
      // RAII so in_flight_ reaches zero even when the task throws —
      // otherwise wait_idle() would hang forever on the lost decrement.
      struct InFlightGuard {
        ThreadPool& pool;
        ~InFlightGuard() {
          std::lock_guard lock(pool.mu_);
          if (--pool.in_flight_ == 0) pool.cv_idle_.notify_all();
        }
      } guard{*this};
      try {
        task();
      } catch (...) {
        // Keep the worker alive (an escaped exception would std::terminate
        // the process); the first error is replayed at the next wait_idle.
        std::lock_guard lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
}

}  // namespace metadock::util
