// Streaming statistics used by the benchmark harness and the schedulers'
// warm-up measurement phase.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace metadock::util {

/// Nearest-rank percentile of a sample set (p in [0, 100]).  The input
/// need not be sorted; a copy is sorted internally.  Unlike
/// obs::Histogram::percentile (which reports NaN on an empty window so
/// dashboards degrade gracefully), this throws on empty input and
/// out-of-range p: callers here are summarising measurements they claim
/// to have made, and a silent NaN would launder "no data" into a report.
inline double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample set");
  if (!(p >= 0.0 && p <= 100.0)) throw std::invalid_argument("percentile: p outside [0, 100]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (p == 0.0) return sorted.front();
  // Nearest-rank: smallest index i with (i+1)/n >= p/100.
  const auto n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

/// Welford-style streaming accumulator: numerically stable mean/variance
/// without storing samples.
class StatAccumulator {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Merges another accumulator (parallel reduction, Chan et al.).
  void merge(const StatAccumulator& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
    mean_ += delta * nb / (na + nb);
    n_ += o.n_;
    sum_ += o.sum_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace metadock::util
