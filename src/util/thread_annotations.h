// Clang Thread Safety Analysis annotation shim.
//
// The macros below expand to clang's `capability`-family attributes when
// the compiler understands them and to nothing everywhere else (GCC, MSVC,
// older clangs), so annotated headers cost zero on the default toolchain.
// Under `clang++ -Wthread-safety -Werror=thread-safety-analysis` (the
// `clang` CMake preset / tools/run_thread_safety.sh gate) the annotations
// turn the lock discipline of DESIGN.md §16 into compile errors: every
// `GUARDED_BY` member must be touched under its capability, every
// `REQUIRES` function must be entered with it held, and every
// `ACQUIRE`/`RELEASE` pair must balance on all paths.
//
// Naming follows the reference shim in the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the
// annotations read the same here as in the large serving stacks that
// popularized them.  Use the wrappers in util/sync.h — never raw
// std::mutex (metadock-lint MDL010) — so the attributes actually attach
// to something the analysis can track.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define METADOCK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define METADOCK_THREAD_ANNOTATION(x)  // no-op on GCC and friends
#endif

/// Marks a class as a capability (lockable).  The string names the
/// capability kind in diagnostics ("mutex", "role", ...).
#define CAPABILITY(x) METADOCK_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define SCOPED_CAPABILITY METADOCK_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define GUARDED_BY(x) METADOCK_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by the capability.
#define PT_GUARDED_BY(x) METADOCK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called with the capabilities held.
#define REQUIRES(...) \
  METADOCK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  METADOCK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capabilities and holds them on return.
#define ACQUIRE(...) METADOCK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  METADOCK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the capabilities (they must be held on entry).
#define RELEASE(...) METADOCK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  METADOCK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(...) \
  METADOCK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be entered with the capabilities held
/// (deadlock/reentrancy guard; this is how the role capabilities of
/// DESIGN.md §16 catch an entry point re-entering itself).
#define EXCLUDES(...) METADOCK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held; teaches the analysis
/// the fact without an acquire.
#define ASSERT_CAPABILITY(x) METADOCK_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the given capability.
#define RETURN_CAPABILITY(x) METADOCK_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is not analyzed.  Every use needs a
/// comment saying why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  METADOCK_THREAD_ANNOTATION(no_thread_safety_analysis)
