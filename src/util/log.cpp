#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace metadock::util {

namespace {

std::atomic<int> g_level{-1};  // -1 = not yet initialized

LogLevel level_from_env() {
  const char* env = std::getenv("METADOCK_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

}  // namespace

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(level_from_env());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void vlog(LogLevel /*level*/, const char* tag, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "[metadock:%s] ", tag);
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
  va_end(ap);
}

}  // namespace detail

}  // namespace metadock::util
