// Environment-variable helpers for the bench harness (workload scaling,
// output format switches).
#pragma once

#include <cstdint>
#include <string>

namespace metadock::util {

/// Returns the env var value or `fallback` when unset/empty.
std::string env_or(const char* name, const std::string& fallback);

/// Returns the env var parsed as double, or `fallback` when unset/invalid.
double env_or(const char* name, double fallback);

/// Returns the env var parsed as int64, or `fallback` when unset/invalid.
std::int64_t env_or(const char* name, std::int64_t fallback);

/// True when the env var is set to 1/true/yes/on (case-insensitive).
bool env_flag(const char* name, bool fallback = false);

}  // namespace metadock::util
