// Minimal work-sharing thread pool.
//
// The CUDA Core Guidelines-style rule we follow (CP.23/CP.25): threads are
// scoped containers — the pool joins everything in its destructor and no
// thread ever outlives the data it touches.  Virtual devices use the pool to
// really execute kernel blocks on the host while the cost model advances
// their virtual clocks.
//
// Lock discipline (DESIGN.md §16): all cross-thread state — the task
// queue, the in-flight counter, the stop flag, and the first-exception
// slot — is GUARDED_BY(mu_); the clang thread-safety gate proves every
// access happens under the lock.  Each parallel_for() call owns a private
// completion capability (see ForCall in the .cpp), so concurrent callers
// never contend on — or observe — each other's state.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace metadock::util {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns immediately.  A task that throws does not
  /// kill the worker: the first exception is captured and rethrown by the
  /// next wait_idle()/parallel_for() on the submitting side.
  void submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every submitted task has finished (including tasks that
  /// in-flight parallel_for() calls spawned).  Rethrows the first exception
  /// a submit()ed task threw since the last wait (later ones are dropped;
  /// parallel_for exceptions belong to their own call and are never
  /// surfaced here); the pool stays usable afterwards.
  void wait_idle() EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, n), splitting the index space into contiguous
  /// chunks across workers, and blocks until done.  fn must be safe to call
  /// concurrently for distinct i.  When called from inside a pool worker
  /// (nested parallelism), runs inline on the calling thread instead.  An
  /// exception thrown by fn propagates to the caller (first thrower wins;
  /// remaining chunks still run to completion before the rethrow).
  ///
  /// Each call tracks its own completion and its own first exception, so
  /// concurrent parallel_for() calls on the same pool are independent: a
  /// caller never waits on another caller's tasks and an exception always
  /// surfaces at the call whose fn threw it (never at wait_idle()).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      EXCLUDES(mu_);

  /// Shared process-wide pool sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop() EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_task_;
  CondVar cv_idle_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  /// First exception thrown by a task since the last wait_idle rethrow.
  std::exception_ptr first_error_ GUARDED_BY(mu_);
};

}  // namespace metadock::util
