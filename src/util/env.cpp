#include "util/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace metadock::util {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end != v ? parsed : fallback;
}

std::int64_t env_or(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return end != v ? static_cast<std::int64_t>(parsed) : fallback;
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace metadock::util
