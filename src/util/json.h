// Minimal JSON writer and reader.  Screening campaigns and experiment
// tables serialize through the writer so downstream pipelines can consume
// results without scraping ASCII tables; the reader exists for the parts of
// the system that consume their own output — the batch-screening service
// re-reads its emitted JSONL hit stream to resume after a crash, and the
// job server parses job-description files.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace metadock::util {

/// Streaming JSON builder with automatic comma placement and string
/// escaping.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("2BSM");
///   w.key("hits").begin_array();
///   ... w.begin_object(); ... w.end_object();
///   w.end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object, and must be followed
  /// by exactly one value (or container).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Emits a double with the shortest decimal form that parses back to the
  /// same bits (value() rounds to 10 significant digits, plenty for display
  /// but lossy).  Records that are read back by the resume path must
  /// roundtrip exactly, or a resumed run would rank hits by rounded scores.
  JsonWriter& value_exact(double v);

  /// Finished document; throws std::logic_error if containers are still
  /// open.
  [[nodiscard]] std::string str() const;

  /// Escapes a string for embedding in JSON (quotes not included).
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  void before_value();

  std::string out_;
  /// Stack of container states: 'o' = object awaiting key, 'v' = object
  /// awaiting value, 'a' = array.
  std::vector<char> stack_;
  bool need_comma_ = false;
};

/// Thrown by JsonValue::parse on malformed input; carries the byte offset
/// of the failure so JSONL consumers can report the line and column.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what), offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_ = 0;
};

/// Parsed JSON document: a tagged union over the seven JSON shapes.
/// Objects preserve insertion order (the writer emits deterministic key
/// order, and roundtripped records must stay comparable).  Numbers are
/// stored as double; every integer the system writes fits in the 53-bit
/// mantissa.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// Parses exactly one JSON document; trailing non-whitespace is an
  /// error.  Throws JsonParseError on malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;    // throws unless integral
  [[nodiscard]] std::uint64_t as_uint64() const;  // throws unless integral >= 0
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; null when `this` is not an object or the key is
  /// absent (so chained optional reads stay terse).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Member that must exist: throws std::out_of_range when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Convenience typed reads with a fallback for absent members.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key, const std::string& fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace metadock::util
