// Minimal JSON writer (no parsing).  Screening campaigns and experiment
// tables serialize through this so downstream pipelines can consume results
// without scraping ASCII tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace metadock::util {

/// Streaming JSON builder with automatic comma placement and string
/// escaping.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("2BSM");
///   w.key("hits").begin_array();
///   ... w.begin_object(); ... w.end_object();
///   w.end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object, and must be followed
  /// by exactly one value (or container).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Finished document; throws std::logic_error if containers are still
  /// open.
  [[nodiscard]] std::string str() const;

  /// Escapes a string for embedding in JSON (quotes not included).
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  void before_value();

  std::string out_;
  /// Stack of container states: 'o' = object awaiting key, 'v' = object
  /// awaiting value, 'a' = array.
  std::vector<char> stack_;
  bool need_comma_ = false;
};

}  // namespace metadock::util
