// Wall-clock timer.  Simulated (virtual) time lives in gpusim::VirtualClock;
// this one is for measuring the host for the real-execution benches.
#pragma once

#include <chrono>

namespace metadock::util {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace metadock::util
