// Deterministic random number generation for MetaDock.
//
// Metaheuristics in the paper are stochastic, yet the reproduction must be
// bitwise repeatable regardless of how work is scheduled across (virtual)
// devices and host threads.  We therefore use *counter-based* streams: every
// (seed, spot, individual, iteration) tuple hashes to an independent stream,
// so the numeric trajectory of a docking run never depends on thread
// interleaving or on which device evaluated which conformation.
#pragma once

#include <cstdint>

namespace metadock::util {

/// SplitMix64 step: the canonical 64-bit finalizing mixer.  Used both as a
/// standalone generator and as the stream-derivation hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash-combine for deriving substream keys.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the subset of UniformRandomBitGenerator we need.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 so that low-entropy seeds
  /// still produce well-distributed state.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9d2c5680ca6b0002ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  constexpr float uniformf() noexcept {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal deviate (Marsaglia polar method).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// True with probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Derives an independent RNG for a (seed, key...) tuple.  All structure in
/// MetaDock that needs randomness (per spot, per individual, per generation)
/// goes through this so results are schedule-independent.
template <typename... Keys>
[[nodiscard]] constexpr Xoshiro256 stream(std::uint64_t seed, Keys... keys) noexcept {
  std::uint64_t k = seed;
  ((k = hash_combine(k, static_cast<std::uint64_t>(keys))), ...);
  return Xoshiro256{k};
}

}  // namespace metadock::util
