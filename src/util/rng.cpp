#include "util/rng.h"

#include <cmath>

namespace metadock::util {

double Xoshiro256::normal() noexcept {
  // Marsaglia polar method; on average ~1.27 uniform pairs per deviate.
  // We deliberately discard the second deviate to keep the generator
  // stateless beyond its stream (simpler reasoning about reproducibility).
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace metadock::util
