#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace metadock::util {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Table::str() const {
  // Compute column widths over header and all rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) width[i] = std::max(width[i], r[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t i = 0; i < cols; ++i) os << std::string(width[i] + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& c = i < r.size() ? r[i] : std::string{};
      os << ' ' << c << std::string(width[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    return out + "\"";
  };
  auto line = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      os << esc(r[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) line(header_);
  for (const auto& r : rows_) line(r);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace metadock::util
