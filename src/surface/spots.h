// Protein-surface spot detection.
//
// BINDSURF-style blind docking divides the whole protein surface into
// arbitrary independent regions ("spots"); the paper identifies spots "by
// finding out a specific type of atoms in the protein".  We reproduce that:
// exposure is estimated by neighbour counting (surface atoms have fewer
// neighbours than buried ones), spots are seeded on exposed hydrogen-bond-
// capable atoms (N/O by default) and clustered so each spot covers a patch
// of the surface.  Spots are mutually independent — they are the unit of
// data parallelism the schedulers distribute across devices.
#pragma once

#include <vector>

#include "geom/vec3.h"
#include "mol/molecule.h"

namespace metadock::surface {

struct Spot {
  int id = 0;
  /// Docking-search anchor, displaced off the surface along the outward
  /// direction so initial ligand poses do not start buried in the receptor.
  geom::Vec3 center{};
  /// Outward (away from protein interior) unit direction at the spot.
  geom::Vec3 outward{1.0f, 0.0f, 0.0f};
  /// Radius of the translational search region around `center`.
  float radius = 4.0f;
  /// How many seed atoms were merged into this spot (diagnostic).
  int support = 1;
};

struct SpotParams {
  /// Neighbour-count sphere radius for the exposure estimate (Angstrom).
  float probe_radius = 8.0f;
  /// An atom is "exposed" when its neighbour count is below this fraction
  /// of the molecule-wide mean neighbour count.
  float exposure_fraction = 0.85f;
  /// Seed atoms closer than this are merged into one spot (Angstrom).
  float cluster_radius = 3.0f;
  /// Spot center displacement off the seed centroid, outward (Angstrom).
  float surface_offset = 3.0f;
  /// Translational search radius stored on each spot.
  float search_radius = 4.0f;
  /// Restrict seeds to H-bond-capable atoms, as in the paper.
  bool only_polar_atoms = true;
};

/// Per-atom neighbour counts within `probe_radius` (the raw exposure
/// signal; exposed surface atoms score low).
[[nodiscard]] std::vector<int> neighbour_counts(const mol::Molecule& receptor,
                                                float probe_radius);

/// Indices of exposed atoms under the given parameters.
[[nodiscard]] std::vector<std::size_t> exposed_atoms(const mol::Molecule& receptor,
                                                     const SpotParams& params);

/// Detects surface spots.  Deterministic: seeds are processed in atom-index
/// order, so the same receptor always yields the same spot list.
[[nodiscard]] std::vector<Spot> find_spots(const mol::Molecule& receptor,
                                           const SpotParams& params = {});

}  // namespace metadock::surface
