#include "surface/spots.h"

#include <cmath>

#include "geom/cell_grid.h"

namespace metadock::surface {

using geom::Vec3;

std::vector<int> neighbour_counts(const mol::Molecule& receptor, float probe_radius) {
  const std::vector<Vec3> pos = receptor.positions();
  const geom::CellGrid grid = geom::CellGrid::over_points(pos, probe_radius);
  std::vector<int> counts(receptor.size(), 0);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    // count_within includes the atom itself; subtract it.
    counts[i] = static_cast<int>(grid.count_within(pos[i], probe_radius)) - 1;
  }
  return counts;
}

std::vector<std::size_t> exposed_atoms(const mol::Molecule& receptor, const SpotParams& params) {
  const std::vector<int> counts = neighbour_counts(receptor, params.probe_radius);
  double mean = 0.0;
  for (int c : counts) mean += c;
  if (!counts.empty()) mean /= static_cast<double>(counts.size());
  const double cutoff = params.exposure_fraction * mean;

  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < receptor.size(); ++i) {
    if (counts[i] >= cutoff) continue;
    if (params.only_polar_atoms) {
      const mol::Element e = receptor.element(i);
      if (e != mol::Element::kN && e != mol::Element::kO) continue;
    }
    out.push_back(i);
  }
  return out;
}

std::vector<Spot> find_spots(const mol::Molecule& receptor, const SpotParams& params) {
  const std::vector<std::size_t> seeds = exposed_atoms(receptor, params);
  const Vec3 interior = receptor.centroid();

  // Greedy clustering in atom-index order: each seed joins the first spot
  // whose running centroid is within cluster_radius, else founds a new one.
  struct Cluster {
    Vec3 sum{};
    int n = 0;
    [[nodiscard]] Vec3 centroid() const { return sum / static_cast<float>(n); }
  };
  std::vector<Cluster> clusters;
  const float r2 = params.cluster_radius * params.cluster_radius;
  for (std::size_t idx : seeds) {
    const Vec3 p = receptor.position(idx);
    bool merged = false;
    for (Cluster& c : clusters) {
      if (c.centroid().distance2(p) <= r2) {
        c.sum += p;
        ++c.n;
        merged = true;
        break;
      }
    }
    if (!merged) clusters.push_back({p, 1});
  }

  std::vector<Spot> spots;
  spots.reserve(clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const Vec3 c = clusters[i].centroid();
    const Vec3 outward = (c - interior).normalized();
    Spot s;
    s.id = static_cast<int>(i);
    s.center = c + outward * params.surface_offset;
    s.outward = outward;
    s.radius = params.search_radius;
    s.support = clusters[i].n;
    spots.push_back(s);
  }
  return spots;
}

}  // namespace metadock::surface
