// Multi-node virtual screening: the vs-layer face of sched::ClusterSim.
//
// A ClusterScreener pairs the *science* of a campaign with its *cluster
// timing*.  The science — per-ligand best pose/score — is computed once
// through the caller's VirtualScreeningEngine, exactly as single-node
// screen() would, so the returned hit list is bit-identical to
// engine.screen(ligands) under the hit_before total order for every
// distribution policy, node count and node-fault schedule.  Docking
// numerics are placement-independent: which simulated node ran a ligand
// changes when its result reaches the master, never what the result is.
// Node death re-docks lost in-flight work on a survivor, and a re-dock
// replays the same seed (options().seed + ligand_index), so even lossy
// schedules retain the identical hit set.
//
// The timing — makespan, per-node attribution, steal/death accounting —
// comes from the event-driven simulator and lives in the ClusterReport;
// per-hit virtual_seconds stay the engine's single-node numbers.
#pragma once

#include <vector>

#include "sched/cluster.h"
#include "vs/screening.h"

namespace metadock::vs {

struct ClusterScreeningResult {
  /// Sorted under hit_before; bit-identical to engine.screen(ligands).
  std::vector<LigandHit> hits;
  /// Cluster-level timing and distribution accounting (docked_on[i] names
  /// the node whose result the master accepted for ligand i).
  sched::ClusterReport report;
};

class ClusterScreener {
 public:
  ClusterScreener(VirtualScreeningEngine& engine, std::vector<sched::NodeConfig> nodes,
                  sched::ClusterOptions options = {});

  /// Screens the library on the simulated cluster.  Hits are docked through
  /// the engine (numerics identical to engine.screen); the campaign's
  /// distribution across nodes is played out by ClusterSim::simulate.
  [[nodiscard]] ClusterScreeningResult screen(const std::vector<mol::Molecule>& ligands,
                                              sched::DistributionPolicy policy);

  /// Plays out the campaign's timing only — same workload derivation as
  /// screen() but no docking, so sizing a cluster (nodes, policy, fault
  /// schedule) costs one event-simulator pass regardless of library size.
  [[nodiscard]] sched::ClusterReport estimate(const std::vector<mol::Molecule>& ligands,
                                              sched::DistributionPolicy policy);

  [[nodiscard]] const sched::ClusterSim& cluster() const noexcept { return sim_; }

 private:
  VirtualScreeningEngine& engine_;
  sched::ClusterSim sim_;
};

}  // namespace metadock::vs
