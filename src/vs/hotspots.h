// Surface score maps and hotspot extraction.
//
// BINDSURF's defining output: docking the ligand at *every* surface spot
// yields a distribution of best scoring-function values over the protein
// surface, "resulting in new spots found after the examination of the
// distribution of scoring function values over the entire protein
// surface".  These helpers turn a docking run into that ranked map and
// pick out the hotspots.
#pragma once

#include <vector>

#include "geom/vec3.h"
#include "meta/engine.h"
#include "surface/spots.h"

namespace metadock::vs {

struct SpotScore {
  int spot_id = -1;
  geom::Vec3 center{};
  double best_energy = 0.0;
};

/// Per-spot best energies from a docking run, sorted best (lowest) first.
/// Spots the run did not visit are omitted.
[[nodiscard]] std::vector<SpotScore> surface_score_map(
    const meta::RunResult& result, const std::vector<surface::Spot>& spots);

/// The high-affinity subset of a score map: spots whose best energy is
/// within `fraction` of the global best, measured against the map's energy
/// spread.  Only attractive (negative-energy) spots qualify.
[[nodiscard]] std::vector<SpotScore> hotspots(const std::vector<SpotScore>& score_map,
                                              double fraction = 0.2);

}  // namespace metadock::vs
