#include "vs/batch_screening.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/json.h"
#include "vs/report.h"

namespace metadock::vs {

void TopHitsRetainer::offer(LigandHit hit) {
  if (capacity_ == 0) return;
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(hit));
    std::push_heap(heap_.begin(), heap_.end(), hit_before);
    return;
  }
  // Full: displace the worst retained hit iff the newcomer beats it.
  if (!hit_before(hit, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), hit_before);
  heap_.back() = std::move(hit);
  std::push_heap(heap_.begin(), heap_.end(), hit_before);
}

std::vector<LigandHit> TopHitsRetainer::take_sorted() {
  std::vector<LigandHit> out = std::move(heap_);
  heap_.clear();
  sort_hits(out);
  return out;
}

ResumeState read_jsonl_hits(const std::string& path) {
  ResumeState state;
  std::ifstream in(path, std::ios::binary);
  if (!in) return state;  // nothing emitted yet: fresh start
  std::string line;
  std::uint64_t consumed = 0;
  bool tail_reached = false;
  while (std::getline(in, line)) {
    const bool complete = !in.eof();  // getline that hit EOF read a torn line
    const std::uint64_t line_bytes = line.size() + (complete ? 1 : 0);
    if (tail_reached || !complete) {
      ++state.discarded_lines;
      consumed += line_bytes;
      continue;
    }
    if (line.empty()) {  // blank separator lines are harmless
      consumed += line_bytes;
      state.valid_bytes = consumed;
      continue;
    }
    try {
      state.hits.push_back(hit_from_json(util::JsonValue::parse(line)));
      consumed += line_bytes;
      state.valid_bytes = consumed;
    } catch (const std::exception&) {
      // Torn or corrupt record: everything from here on is untrusted.
      // The stream is append-only, so corruption can only be a tail event;
      // the ligands behind the discarded lines are simply re-docked.
      ++state.discarded_lines;
      consumed += line_bytes;
      tail_reached = true;
    }
  }
  return state;
}

std::size_t retain_capacity_for(std::size_t admitted, double top_percent) {
  if (admitted == 0) return 0;
  const double raw = std::ceil(static_cast<double>(admitted) * top_percent / 100.0);
  const auto capacity = static_cast<std::size_t>(raw);
  return std::clamp<std::size_t>(capacity, 1, admitted);
}

BatchScreener::BatchScreener(VirtualScreeningEngine& engine, BatchScreeningOptions options)
    : engine_(engine), options_(std::move(options)) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("BatchScreener: batch_size must be >= 1");
  }
  if (!(options_.top_percent > 0.0) || options_.top_percent > 100.0) {
    throw std::invalid_argument("BatchScreener: top_percent must be in (0, 100]");
  }
  if (options_.resume && options_.hits_path.empty()) {
    throw std::invalid_argument("BatchScreener: resume requires a hits_path");
  }
}

BatchScreeningResult BatchScreener::run(const std::vector<mol::Molecule>& ligands) {
  BatchScreeningResult result;
  result.admitted = ligands.size();
  result.retain_capacity = retain_capacity_for(ligands.size(), options_.top_percent);
  TopHitsRetainer retainer(result.retain_capacity);
  std::vector<char> done(ligands.size(), 0);

  if (obs::Observer* o = options_.observer) {
    o->metrics.counter("vs.batch.admitted").add(static_cast<double>(ligands.size()));
  }

  // -- Resume: recover the valid prefix of the emitted stream. ------------
  if (options_.resume) {
    ResumeState recovered = read_jsonl_hits(options_.hits_path);
    result.discarded_lines = recovered.discarded_lines;
    for (LigandHit& hit : recovered.hits) {
      const std::size_t idx = hit.ligand_index;
      // Records outside the admitted library (job shrank) or duplicated
      // indices are ignored rather than trusted.
      if (idx >= ligands.size() || done[idx] != 0) continue;
      done[idx] = 1;
      ++result.resumed_skips;
      retainer.offer(std::move(hit));
    }
    if (obs::Observer* o = options_.observer) {
      o->metrics.counter("vs.batch.resumed_skips")
          .add(static_cast<double>(result.resumed_skips));
    }
    // Drop the torn tail so the stream stays parseable and the re-docked
    // records land exactly where the uninterrupted run would put them.
    if (recovered.valid_bytes > 0 || recovered.discarded_lines > 0) {
      std::error_code ec;
      if (std::filesystem::exists(options_.hits_path, ec)) {
        std::filesystem::resize_file(options_.hits_path, recovered.valid_bytes, ec);
        if (ec) {
          throw std::runtime_error("BatchScreener: cannot truncate " + options_.hits_path +
                                   ": " + ec.message());
        }
      }
    }
  }

  // -- Stream sink. -------------------------------------------------------
  std::ofstream out;
  if (!options_.hits_path.empty()) {
    out.open(options_.hits_path, std::ios::binary | std::ios::app);
    if (!out) {
      throw std::runtime_error("BatchScreener: cannot open " + options_.hits_path);
    }
  }

  const auto update_progress = [&](std::size_t completed_now) {
    if (obs::Observer* o = options_.observer) {
      const double fraction = ligands.empty() ? 1.0
                                              : static_cast<double>(completed_now) /
                                                    static_cast<double>(ligands.size());
      o->metrics.gauge("vs.batch.progress").set(fraction);
      if (!options_.job_name.empty()) {
        o->metrics.gauge("vs.job." + options_.job_name + ".progress").set(fraction);
      }
    }
  };

  // -- Batched docking loop.  Batch b always covers the same index range
  // regardless of how many of its ligands were recovered, so emitted
  // records are appended in global index order across crashes. ------------
  std::size_t completed = result.resumed_skips;
  const std::size_t n_batches =
      ligands.empty() ? 0 : (ligands.size() + options_.batch_size - 1) / options_.batch_size;
  for (std::size_t b = 0; b < n_batches; ++b) {
    if (options_.max_batches != 0 && b >= options_.max_batches) {
      result.interrupted = true;
      break;
    }
    if (options_.should_stop && options_.should_stop()) {
      result.interrupted = true;
      break;
    }
    const std::size_t begin = b * options_.batch_size;
    const std::size_t end = std::min(begin + options_.batch_size, ligands.size());
    std::size_t batch_new = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (done[i] != 0) continue;
      LigandHit hit = engine_.dock(ligands[i], i);
      done[i] = 1;
      ++completed;
      ++result.newly_docked;
      ++batch_new;
      result.virtual_seconds += hit.virtual_seconds;
      result.energy_joules += hit.energy_joules;
      result.faults.merge(hit.faults);
      if (out.is_open()) out << hit_to_json_line(hit) << '\n';
      retainer.offer(std::move(hit));
    }
    // Flush at the batch boundary: the crash-loss unit is one batch.
    if (batch_new > 0 && out.is_open()) out.flush();
    if (obs::Observer* o = options_.observer) {
      o->metrics.counter("vs.batch.completed").add(static_cast<double>(batch_new));
    }
    update_progress(completed);
  }
  if (out.is_open()) out.flush();

  result.completed = completed;
  result.retained = retainer.take_sorted();
  if (obs::Observer* o = options_.observer) {
    o->metrics.counter("vs.batch.retained").add(static_cast<double>(result.retained.size()));
  }
  update_progress(completed);
  return result;
}

}  // namespace metadock::vs
