#include "vs/job_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "mol/library.h"
#include "mol/synth.h"
#include "sched/node_config.h"
#include "util/json.h"

namespace metadock::vs {

namespace fs = std::filesystem;

namespace {

constexpr const char* kJobSuffix = ".job.json";

mol::Dataset dataset_from(const std::string& name) {
  if (name == "2BSM") return mol::kDataset2BSM;
  if (name == "2BXG") return mol::kDataset2BXG;
  throw std::invalid_argument("job: unknown dataset '" + name + "' (expected 2BSM or 2BXG)");
}

sched::NodeConfig node_from(const std::string& name) {
  if (name == "hertz") return sched::hertz();
  if (name == "jupiter") return sched::jupiter();
  throw std::invalid_argument("job: unknown node '" + name + "' (expected hertz or jupiter)");
}

sched::Strategy strategy_from(const std::string& name) {
  if (name == "het") return sched::Strategy::kHeterogeneous;
  if (name == "hom") return sched::Strategy::kHomogeneous;
  if (name == "cpu") return sched::Strategy::kCpu;
  if (name == "coop") return sched::Strategy::kCooperative;
  throw std::invalid_argument("job: unknown strategy '" + name + "'");
}

meta::MetaheuristicParams mh_from(const std::string& name) {
  if (name == "M1") return meta::m1_genetic();
  if (name == "M2") return meta::m2_scatter_full();
  if (name == "M3") return meta::m3_scatter_light();
  if (name == "M4") return meta::m4_local_search();
  if (name == "SA") return meta::sa_annealing();
  if (name == "TS") return meta::tabu_search();
  throw std::invalid_argument("job: unknown metaheuristic '" + name + "'");
}

std::size_t size_or(const util::JsonValue& v, std::string_view key, std::size_t fallback) {
  const util::JsonValue* m = v.find(key);
  if (m == nullptr) return fallback;
  return static_cast<std::size_t>(m->as_uint64());
}

std::uint64_t u64_or(const util::JsonValue& v, std::string_view key, std::uint64_t fallback) {
  const util::JsonValue* m = v.find(key);
  return m == nullptr ? fallback : m->as_uint64();
}

}  // namespace

JobSpec parse_job_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("job: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const util::JsonValue doc = util::JsonValue::parse(buffer.str());
  if (!doc.is_object()) throw std::runtime_error("job: " + path + " is not a JSON object");

  JobSpec spec;
  spec.job_path = path;
  std::string stem = fs::path(path).filename().string();
  if (stem.size() > std::strlen(kJobSuffix) &&
      stem.compare(stem.size() - std::strlen(kJobSuffix), std::string::npos, kJobSuffix) == 0) {
    stem.resize(stem.size() - std::strlen(kJobSuffix));
  } else {
    stem = fs::path(path).stem().string();
  }
  spec.name = doc.string_or("name", stem);

  spec.ligand_count = size_or(doc, "ligands", spec.ligand_count);
  spec.min_atoms = size_or(doc, "min_atoms", spec.min_atoms);
  spec.max_atoms = size_or(doc, "max_atoms", spec.max_atoms);
  spec.library_seed = u64_or(doc, "library_seed", spec.library_seed);

  spec.dataset = doc.string_or("dataset", spec.dataset);
  spec.receptor_atoms = size_or(doc, "receptor_atoms", spec.receptor_atoms);
  spec.receptor_seed = u64_or(doc, "receptor_seed", spec.receptor_seed);

  spec.mh = doc.string_or("mh", spec.mh);
  spec.node = doc.string_or("node", spec.node);
  spec.strategy = doc.string_or("strategy", spec.strategy);
  spec.scale = doc.number_or("scale", spec.scale);
  spec.seed = u64_or(doc, "seed", spec.seed);
  spec.population_per_spot =
      static_cast<int>(doc.number_or("population_per_spot", spec.population_per_spot));

  spec.batch_size = size_or(doc, "batch_size", spec.batch_size);
  spec.top_percent = doc.number_or("top_percent", spec.top_percent);
  spec.hits_path = doc.string_or("hits", std::string());
  if (spec.hits_path.empty()) spec.hits_path = path + ".hits.jsonl";
  spec.resume = doc.bool_or("resume", spec.resume);

  if (spec.ligand_count == 0) throw std::invalid_argument("job: ligands must be >= 1");
  if (spec.min_atoms < 4 || spec.max_atoms < spec.min_atoms) {
    throw std::invalid_argument("job: need 4 <= min_atoms <= max_atoms");
  }
  return spec;
}

JobServer::JobServer(JobServerOptions options) : options_(std::move(options)) {
  const util::ScopedSerial own(serial_);
  if (options_.poll_ms < 0) throw std::invalid_argument("JobServer: poll_ms must be >= 0");
}

std::vector<std::string> JobServer::scan_jobs_dir() const {
  std::vector<std::string> pending;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(options_.jobs_dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > std::strlen(kJobSuffix) &&
        name.compare(name.size() - std::strlen(kJobSuffix), std::string::npos, kJobSuffix) ==
            0) {
      pending.push_back(entry.path().string());
    }
  }
  if (ec) throw std::runtime_error("JobServer: cannot scan " + options_.jobs_dir + ": " +
                                   ec.message());
  std::sort(pending.begin(), pending.end());
  return pending;
}

JobOutcome JobServer::process_job(const std::string& path) {
  const util::ScopedSerial own(serial_);
  return process_job_impl(path);
}

JobOutcome JobServer::process_job_impl(const std::string& path) {
  JobOutcome outcome;
  outcome.job_path = path;
  try {
    const JobSpec spec = parse_job_file(path);
    outcome.name = spec.name;
    outcome.hits_path = spec.hits_path;
    if (options_.log != nullptr) {
      *options_.log << "job " << spec.name << ": " << spec.ligand_count << " ligands, batch "
                    << spec.batch_size << ", top " << spec.top_percent << "%"
                    << (spec.resume ? ", resumable" : "") << "\n";
    }

    const mol::Molecule receptor = [&spec] {
      if (spec.receptor_atoms > 0) {
        mol::ReceptorParams rp;
        rp.atom_count = spec.receptor_atoms;
        rp.seed = spec.receptor_seed;
        return mol::make_receptor(rp);
      }
      return mol::make_dataset_receptor(dataset_from(spec.dataset));
    }();

    mol::LibraryParams lib;
    lib.count = spec.ligand_count;
    lib.min_atoms = spec.min_atoms;
    lib.max_atoms = spec.max_atoms;
    lib.seed = spec.library_seed;
    const std::vector<mol::Molecule> ligands = mol::make_ligand_library(lib);

    ScreeningOptions screening;
    screening.params = mh_from(spec.mh);
    if (spec.population_per_spot > 0) {
      screening.params.population_per_spot = spec.population_per_spot;
    }
    screening.exec.strategy = strategy_from(spec.strategy);
    screening.exec.observer = options_.observer;
    screening.scale = spec.scale;
    screening.seed = spec.seed;
    VirtualScreeningEngine engine(receptor, node_from(spec.node), screening);

    BatchScreeningOptions batch;
    batch.batch_size = spec.batch_size;
    batch.top_percent = spec.top_percent;
    batch.hits_path = spec.hits_path;
    batch.resume = spec.resume;
    batch.job_name = spec.name;
    batch.observer = options_.observer;
    batch.should_stop = options_.should_stop;
    BatchScreener screener(engine, batch);
    outcome.result = screener.run(ligands);
    outcome.interrupted = outcome.result.interrupted;
    outcome.ok = true;

    std::error_code ec;
    if (outcome.interrupted) {
      // Keep the job file: the next serve run resumes it from the stream.
      if (options_.log != nullptr) {
        *options_.log << "job " << spec.name << ": interrupted after "
                      << outcome.result.completed << "/" << outcome.result.admitted
                      << " ligands (stream flushed, job kept for resume)\n";
      }
    } else {
      fs::rename(path, path + ".done", ec);
      if (ec && options_.log != nullptr) {
        *options_.log << "job " << spec.name << ": warning: cannot rename to .done: "
                      << ec.message() << "\n";
      }
      if (options_.log != nullptr) {
        *options_.log << "job " << spec.name << ": done — " << outcome.result.retained.size()
                      << "/" << outcome.result.admitted << " hits retained";
        if (outcome.result.resumed_skips > 0) {
          *options_.log << " (" << outcome.result.resumed_skips << " resumed)";
        }
        *options_.log << ", " << outcome.hits_path << "\n";
      }
    }
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
    std::error_code ec;
    fs::rename(path, path + ".failed", ec);  // never reprocess a bad job
    if (options_.log != nullptr) {
      *options_.log << "job " << (outcome.name.empty() ? path : outcome.name)
                    << ": FAILED: " << outcome.error << "\n";
    }
  }
  if (obs::Observer* o = options_.observer) {
    o->metrics.counter(outcome.ok ? "vs.serve.jobs_completed" : "vs.serve.jobs_failed").add();
  }
  return outcome;
}

std::vector<JobOutcome> JobServer::serve_directory() {
  const util::ScopedSerial own(serial_);
  if (options_.jobs_dir.empty()) {
    throw std::invalid_argument("JobServer: directory mode needs jobs_dir");
  }
  std::vector<JobOutcome> outcomes;
  while (!stop_requested()) {
    const std::vector<std::string> pending = scan_jobs_dir();
    if (pending.empty()) {
      if (options_.drain) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
      continue;
    }
    for (const std::string& path : pending) {
      if (stop_requested()) return outcomes;
      outcomes.push_back(process_job_impl(path));
      if (outcomes.back().interrupted) return outcomes;
      if (options_.max_jobs != 0 && outcomes.size() >= options_.max_jobs) return outcomes;
    }
  }
  return outcomes;
}

std::vector<JobOutcome> JobServer::serve_stream(std::istream& in) {
  const util::ScopedSerial own(serial_);
  std::vector<JobOutcome> outcomes;
  std::string line;
  while (!stop_requested() && std::getline(in, line)) {
    // Trim whitespace; blank lines keep the protocol newline-tolerant.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    const std::string path = line.substr(first, last - first + 1);
    outcomes.push_back(process_job_impl(path));
    if (outcomes.back().interrupted) break;
    if (options_.max_jobs != 0 && outcomes.size() >= options_.max_jobs) break;
  }
  return outcomes;
}

}  // namespace metadock::vs
