#include "vs/hotspots.h"

#include <algorithm>
#include <stdexcept>

namespace metadock::vs {

std::vector<SpotScore> surface_score_map(const meta::RunResult& result,
                                         const std::vector<surface::Spot>& spots) {
  std::vector<SpotScore> map;
  map.reserve(result.spot_results.size());
  for (const meta::SpotResult& sr : result.spot_results) {
    SpotScore s;
    s.spot_id = sr.spot_id;
    s.best_energy = sr.best.score;
    const auto it =
        std::find_if(spots.begin(), spots.end(),
                     [&](const surface::Spot& sp) { return sp.id == sr.spot_id; });
    if (it == spots.end()) {
      throw std::invalid_argument("surface_score_map: result references unknown spot");
    }
    s.center = it->center;
    map.push_back(s);
  }
  std::sort(map.begin(), map.end(),
            [](const SpotScore& a, const SpotScore& b) { return a.best_energy < b.best_energy; });
  return map;
}

std::vector<SpotScore> hotspots(const std::vector<SpotScore>& score_map, double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("hotspots: fraction must be in [0, 1]");
  }
  std::vector<SpotScore> out;
  if (score_map.empty()) return out;
  const double best = score_map.front().best_energy;
  if (best >= 0.0) return out;  // no attractive site anywhere
  const double worst = score_map.back().best_energy;
  const double threshold = best + fraction * (worst - best);
  for (const SpotScore& s : score_map) {
    if (s.best_energy <= threshold && s.best_energy < 0.0) out.push_back(s);
  }
  return out;
}

}  // namespace metadock::vs
