// Machine-readable screening reports (JSON) — campaign results, per-spot
// score maps and execution metadata, for downstream pipelines.
#pragma once

#include <string>
#include <vector>

#include "sched/executor.h"
#include "vs/hotspots.h"
#include "vs/screening.h"

namespace metadock::vs {

/// Serializes a ranked hit list: receptor/engine metadata plus one record
/// per ligand (name, index, best energy/spot/pose, modeled cost).
[[nodiscard]] std::string hits_to_json(const std::string& receptor_name,
                                       const std::string& node_name,
                                       const std::vector<LigandHit>& hits);

/// Serializes a surface score map with its hotspot subset.
[[nodiscard]] std::string score_map_to_json(const std::vector<SpotScore>& score_map,
                                            const std::vector<SpotScore>& hot);

/// Serializes an ExecutionReport (per-device shares/times, makespan,
/// energy) for performance dashboards.
[[nodiscard]] std::string execution_to_json(const sched::ExecutionReport& report);

}  // namespace metadock::vs
