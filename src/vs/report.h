// Machine-readable screening reports (JSON) — campaign results, per-spot
// score maps and execution metadata, for downstream pipelines — plus the
// single-line JSONL hit record the batch-screening service streams and
// re-reads on resume.
#pragma once

#include <string>
#include <vector>

#include "sched/executor.h"
#include "util/json.h"
#include "vs/hotspots.h"
#include "vs/screening.h"

namespace metadock::vs {

/// Serializes a ranked hit list: receptor/engine metadata plus one record
/// per ligand (name, index, best energy/spot/pose, modeled cost).
[[nodiscard]] std::string hits_to_json(const std::string& receptor_name,
                                       const std::string& node_name,
                                       const std::vector<LigandHit>& hits);

/// Serializes a surface score map with its hotspot subset.
[[nodiscard]] std::string score_map_to_json(const std::vector<SpotScore>& score_map,
                                            const std::vector<SpotScore>& hot);

/// Serializes an ExecutionReport (per-device shares/times, makespan,
/// energy) for performance dashboards.
[[nodiscard]] std::string execution_to_json(const sched::ExecutionReport& report);

/// One LigandHit as a single-line JSON object (no trailing newline) — the
/// record format of the batch screener's JSONL stream.  Floating-point
/// fields use the exact-roundtrip form, so hit_from_json recovers the
/// bits: a resumed run ranks file-recovered hits identically to the
/// in-memory originals.
[[nodiscard]] std::string hit_to_json_line(const LigandHit& hit);

/// Inverse of hit_to_json_line.  Throws std::out_of_range / std::logic_error
/// on records missing required fields or with mistyped values.
[[nodiscard]] LigandHit hit_from_json(const util::JsonValue& record);

}  // namespace metadock::vs
