#include "vs/screening.h"

#include <algorithm>
#include <stdexcept>

namespace metadock::vs {

VirtualScreeningEngine::VirtualScreeningEngine(const mol::Molecule& receptor,
                                               sched::NodeConfig node, ScreeningOptions options)
    : receptor_(receptor), node_(std::move(node)), options_(std::move(options)) {
  if (options_.scale <= 0.0 || options_.scale > 1.0) {
    throw std::invalid_argument("VirtualScreeningEngine: scale must be in (0, 1]");
  }
  spots_ = surface::find_spots(receptor_, options_.spot_params);
  if (spots_.empty()) {
    throw std::runtime_error("VirtualScreeningEngine: no surface spots detected");
  }
}

LigandHit VirtualScreeningEngine::dock(const mol::Molecule& ligand, std::size_t ligand_index) {
  meta::DockingProblem problem;
  problem.receptor = &receptor_;
  problem.ligand = &ligand;
  problem.spots = spots_;
  problem.seed = options_.seed + ligand_index;
  problem.ligand_radius = ligand.radius_about_centroid();

  sched::NodeExecutor exec(node_, options_.exec);
  const sched::ExecutionReport report =
      exec.run(problem, options_.params.scaled(options_.scale));

  LigandHit hit;
  hit.ligand_index = ligand_index;
  hit.ligand_name = ligand.name();
  hit.best_score = report.result.best.score;
  hit.best_pose = report.result.best.pose;
  hit.best_spot_id = report.result.best_spot_id;
  hit.virtual_seconds = report.makespan_seconds;
  hit.energy_joules = report.energy_joules;
  hit.faults = report.faults;
  return hit;
}

LigandHit VirtualScreeningEngine::dock_ensemble(const mol::Molecule& ligand,
                                                const mol::ConformerParams& conformers,
                                                std::vector<double>* per_conformer,
                                                std::size_t ligand_index) {
  const std::vector<mol::Molecule> ensemble = mol::generate_conformers(ligand, conformers);
  if (per_conformer != nullptr) per_conformer->clear();
  LigandHit best;
  sched::FaultReport ensemble_faults;
  bool first = true;
  for (std::size_t c = 0; c < ensemble.size(); ++c) {
    // Distinct seeds per conformer so ensemble members explore
    // independently; virtual cost accumulates over the whole ensemble.
    LigandHit hit = dock(ensemble[c], ligand_index + c * 1000003);
    ensemble_faults.merge(hit.faults);
    if (per_conformer != nullptr) per_conformer->push_back(hit.best_score);
    if (first || hit.best_score < best.best_score) {
      const double acc_time = first ? 0.0 : best.virtual_seconds;
      const double acc_energy = first ? 0.0 : best.energy_joules;
      best = hit;
      best.virtual_seconds += acc_time;
      best.energy_joules += acc_energy;
      first = false;
    } else {
      best.virtual_seconds += hit.virtual_seconds;
      best.energy_joules += hit.energy_joules;
    }
  }
  best.ligand_index = ligand_index;
  best.ligand_name = ligand.name();
  best.faults = ensemble_faults;
  return best;
}

void sort_hits(std::vector<LigandHit>& hits) {
  std::sort(hits.begin(), hits.end(), hit_before);
}

std::vector<LigandHit> VirtualScreeningEngine::screen(
    const std::vector<mol::Molecule>& ligands) {
  std::vector<LigandHit> hits;
  hits.reserve(ligands.size());
  for (std::size_t i = 0; i < ligands.size(); ++i) hits.push_back(dock(ligands[i], i));
  sort_hits(hits);
  return hits;
}

}  // namespace metadock::vs
