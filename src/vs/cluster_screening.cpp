#include "vs/cluster_screening.h"

#include <cstddef>
#include <utility>

namespace metadock::vs {

ClusterScreener::ClusterScreener(VirtualScreeningEngine& engine,
                                 std::vector<sched::NodeConfig> nodes,
                                 sched::ClusterOptions options)
    : engine_(engine), sim_(std::move(nodes), std::move(options)) {}

sched::ClusterReport ClusterScreener::estimate(const std::vector<mol::Molecule>& ligands,
                                               sched::DistributionPolicy policy) {
  if (ligands.empty()) {
    // Broadcast-only campaign: no representative ligand to derive a
    // workload from, so feed the simulator a unit-speed empty library.
    sched::ClusterWorkload w;
    w.node_base_seconds.assign(sim_.node_count(), 1.0);
    return sim_.simulate(w, policy);
  }

  // Cost model: the first ligand is the representative the per-node
  // NodeExecutor replay times; every other ligand scales by atom count.
  meta::DockingProblem problem;
  problem.receptor = &engine_.receptor();
  problem.ligand = &ligands.front();
  problem.spots = engine_.spots();
  problem.seed = engine_.options().seed;
  problem.ligand_radius = ligands.front().radius_about_centroid();

  std::vector<std::size_t> atom_counts;
  atom_counts.reserve(ligands.size());
  for (const mol::Molecule& lig : ligands) atom_counts.push_back(lig.size());

  const meta::MetaheuristicParams params =
      engine_.options().params.scaled(engine_.options().scale);
  return sim_.simulate(sim_.workload_for(problem, atom_counts, params), policy);
}

ClusterScreeningResult ClusterScreener::screen(const std::vector<mol::Molecule>& ligands,
                                               sched::DistributionPolicy policy) {
  ClusterScreeningResult out;
  out.report = estimate(ligands, policy);
  if (ligands.empty()) return out;

  // The science: dock every ligand once through the engine.  Seeds depend
  // only on ligand_index, so the numbers cannot depend on placement, and a
  // node-death re-dock replays to the identical result.
  out.hits.reserve(ligands.size());
  for (std::size_t i = 0; i < ligands.size(); ++i) {
    out.hits.push_back(engine_.dock(ligands[i], i));
  }
  sort_hits(out.hits);
  return out;
}

}  // namespace metadock::vs
