// Batch-screening pipeline: the library-scale layer above
// VirtualScreeningEngine.
//
// Real deployments screen libraries of millions of ligands, not one
// receptor/ligand pair; this module admits a library in fixed-size batches,
// docks each ligand through the existing fault-tolerant sched layer, and
//
//   * retains only the top-N% hits with a streaming bounded heap, so
//     resident memory is O(retained) rather than O(library);
//   * streams every docked ligand to a JSONL file (one hit record per
//     line, flushed per batch), so partial progress survives a crash;
//   * resumes from that file: a re-run with `resume` re-reads the stream,
//     truncates a torn trailing line, feeds the recovered hits back into
//     the retention heap and docks only the ligands that are missing.
//     Run-level fault/energy/time aggregates count newly docked ligands
//     only — resumed records already paid their cost in the previous run.
//
// Batch boundaries are a pure function of (library size, batch_size), so a
// crashed-and-resumed run appends exactly the records the uninterrupted
// run would have written: the final JSONL stream is byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "vs/screening.h"

namespace metadock::vs {

struct BatchScreeningOptions {
  /// Ligands admitted per batch (>= 1).  The JSONL stream is flushed at
  /// every batch boundary, so this is also the crash-loss granularity.
  std::size_t batch_size = 64;
  /// Retention fraction in (0, 100]: only the best `top_percent` of the
  /// library (under hit_before) is kept in memory and returned.
  double top_percent = 100.0;
  /// JSONL stream path; empty keeps results in memory only (no resume).
  std::string hits_path;
  /// Re-read `hits_path` and skip ligands it already records.
  bool resume = false;
  /// Job label for per-job metrics ("vs.job.<name>.progress"); optional.
  std::string job_name;
  /// Observability sink (nullable = off): vs.batch.{admitted,completed,
  /// retained,resumed_skips} counters and the progress gauges.
  obs::Observer* observer = nullptr;
  /// Cooperative shutdown: polled between batches.  When it returns true
  /// the in-flight batch finishes, the stream is flushed, and run()
  /// returns early with `interrupted` set — the SIGINT contract of
  /// `metadock serve`.
  std::function<bool()> should_stop;
  /// Stop after this many batches this run (0 = unlimited).  Tests use it
  /// to simulate a crash at an exact batch boundary.
  std::size_t max_batches = 0;
};

struct BatchScreeningResult {
  /// Top-N% hits, best-first under hit_before.
  std::vector<LigandHit> retained;
  /// Ligands in the admitted library.
  std::size_t admitted = 0;
  /// Ligands with a result (newly docked + recovered on resume).
  std::size_t completed = 0;
  /// Ligands docked by this run.
  std::size_t newly_docked = 0;
  /// Ligands skipped because the resume stream already recorded them.
  std::size_t resumed_skips = 0;
  /// Torn/corrupt trailing JSONL lines discarded by the resume reader.
  std::size_t discarded_lines = 0;
  /// Heap capacity derived from top_percent (== retained.size() once the
  /// whole library completed).
  std::size_t retain_capacity = 0;
  /// True when run() returned before the library completed (stop request
  /// or max_batches); the JSONL stream is still flushed and resumable.
  bool interrupted = false;
  /// Modeled cost and fault accounting for the ligands *this run* docked.
  /// Resumed records are excluded by design: their cost was accounted by
  /// the run that docked them, and re-adding it would double-count.
  double virtual_seconds = 0.0;
  double energy_joules = 0.0;
  sched::FaultReport faults;
};

/// Bounded best-K container with heap semantics: offer() is O(log K) and
/// keeps the K best hits seen so far under hit_before.  Because hit_before
/// is a strict total order (score, then ligand index), the retained set is
/// a pure function of the offered multiset — insertion order, batch size
/// and resume boundaries cannot change it.
class TopHitsRetainer {
 public:
  explicit TopHitsRetainer(std::size_t capacity) : capacity_(capacity) {}

  void offer(LigandHit hit);

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Extracts the retained hits, best-first; the retainer is left empty.
  [[nodiscard]] std::vector<LigandHit> take_sorted();

 private:
  std::size_t capacity_;
  /// Max-heap under hit_before: front() is the worst retained hit, the
  /// next to be displaced.
  std::vector<LigandHit> heap_;
};

/// Hits recovered from an interrupted run's JSONL stream.
struct ResumeState {
  std::vector<LigandHit> hits;
  /// Byte length of the valid prefix (the file is truncated to this before
  /// appending, so a torn final line cannot corrupt the stream).
  std::uint64_t valid_bytes = 0;
  /// Lines dropped at the tail (torn write or corruption).
  std::size_t discarded_lines = 0;
};

/// Parses a JSONL hit stream, stopping at the first torn/corrupt line.
/// Missing file yields an empty state.
[[nodiscard]] ResumeState read_jsonl_hits(const std::string& path);

/// Retention capacity for a library of `admitted` ligands at `top_percent`
/// (ceil, at least 1 for a non-empty library).
[[nodiscard]] std::size_t retain_capacity_for(std::size_t admitted, double top_percent);

class BatchScreener {
 public:
  /// `engine` must outlive the screener.  Throws std::invalid_argument on
  /// out-of-range batch_size/top_percent, and when resume is requested
  /// without a hits_path.
  BatchScreener(VirtualScreeningEngine& engine, BatchScreeningOptions options);

  /// Screens the library in batches; see the module comment for the
  /// streaming/resume contract.  Ligand i is docked with ligand_index i,
  /// exactly as VirtualScreeningEngine::screen does, so a full-retention
  /// batched run is bit-identical to screen().
  [[nodiscard]] BatchScreeningResult run(const std::vector<mol::Molecule>& ligands);

  [[nodiscard]] const BatchScreeningOptions& options() const noexcept { return options_; }

 private:
  VirtualScreeningEngine& engine_;
  BatchScreeningOptions options_;
};

}  // namespace metadock::vs
