// Experiment driver regenerating the paper's evaluation tables (6-9).
//
// Each row times one metaheuristic (Table 4 presets) under the paper's
// configurations:
//   Jupiter (Tables 6-7): OpenMP | homogeneous system (4x GTX 590) |
//     heterogeneous system with homogeneous computation | with
//     heterogeneous computation, plus the two speed-up columns.
//   Hertz (Tables 8-9): OpenMP | homogeneous computation | heterogeneous
//     computation, plus the two speed-up columns.
// Timing is the full-scale analytic replay (NodeExecutor::estimate); the
// numerics behind the same runs are exercised by tests/examples at reduced
// scale.
#pragma once

#include <string>
#include <vector>

#include "meta/params.h"
#include "mol/synth.h"
#include "sched/node_config.h"

namespace metadock::vs {

struct ExperimentRow {
  std::string metaheuristic;
  double openmp_s = 0.0;
  /// Jupiter only: the 4x GTX 590 homogeneous system.
  double hom_system_s = 0.0;
  /// Heterogeneous system, homogeneous computation (equal split).
  double het_hom_s = 0.0;
  /// Heterogeneous system, heterogeneous computation (Eq. 1 split).
  double het_het_s = 0.0;
  /// Speed-up ratios guard the denominator: a zero timing (row not yet
  /// filled, or a degenerate configuration) yields 0.0 instead of inf/NaN,
  /// which would otherwise poison table JSON (NaN serializes as null) and
  /// any downstream aggregation.
  [[nodiscard]] double speedup_het_vs_hom() const {
    return het_het_s > 0.0 ? het_hom_s / het_het_s : 0.0;
  }
  [[nodiscard]] double speedup_openmp_vs_het() const {
    return het_het_s > 0.0 ? openmp_s / het_het_s : 0.0;
  }
};

struct ExperimentTable {
  std::string title;
  mol::Dataset dataset{};
  std::size_t spots = 0;
  /// True for Jupiter (has the separate homogeneous-system column).
  bool has_hom_system = false;
  std::vector<ExperimentRow> rows;
};

/// Tables 6 (2BSM) and 7 (2BXG): Jupiter.
[[nodiscard]] ExperimentTable run_jupiter_table(const mol::Dataset& dataset);

/// Tables 8 (2BSM) and 9 (2BXG): Hertz.
[[nodiscard]] ExperimentTable run_hertz_table(const mol::Dataset& dataset);

/// Renders in the paper's layout (seconds with two decimals).
void print_experiment_table(const ExperimentTable& table);

}  // namespace metadock::vs
