// VirtualScreeningEngine — the user-facing API.
//
// Given a receptor, a node configuration and a metaheuristic, screen a
// library of ligands over the whole protein surface and rank them by best
// binding energy (BINDSURF-style blind virtual screening).  Each ligand's
// docking really executes on the node's virtual devices; the hit list
// carries both the science (best pose/spot/energy) and the modeled cost
// (virtual seconds, joules).
#pragma once

#include <cstdint>
#include <vector>

#include "meta/engine.h"
#include "meta/params.h"
#include "mol/conformers.h"
#include "mol/molecule.h"
#include "scoring/pose.h"
#include "sched/executor.h"
#include "surface/spots.h"

namespace metadock::vs {

struct ScreeningOptions {
  meta::MetaheuristicParams params = meta::m3_scatter_light();
  sched::ExecutorOptions exec;
  surface::SpotParams spot_params;
  std::uint64_t seed = 42;
  /// Work scale in (0,1]: generations (or one-pass local-search depth) are
  /// multiplied by this for the numeric run.  1.0 reproduces the preset
  /// exactly; smaller values keep interactive examples fast.
  double scale = 1.0;
};

struct LigandHit {
  std::size_t ligand_index = 0;
  std::string ligand_name;
  double best_score = 0.0;
  scoring::Pose best_pose;
  int best_spot_id = -1;
  double virtual_seconds = 0.0;
  double energy_joules = 0.0;
  /// Fault handling performed while docking this ligand (all zero when the
  /// node ran fault-free).
  sched::FaultReport faults;
};

/// The canonical hit ordering: by best score, ties broken by ligand index.
/// A score-only comparator is a strict weak ordering but not a total order
/// over hits, so equal-score ligands (duplicates are common in real
/// libraries) would rank nondeterministically across runs, platforms and
/// the batched top-N% heap.  Every ranked hit list — screen(), the batch
/// screener's retention heap and its final ordering — must sort with this.
[[nodiscard]] inline bool hit_before(const LigandHit& a, const LigandHit& b) noexcept {
  if (a.best_score != b.best_score) return a.best_score < b.best_score;
  return a.ligand_index < b.ligand_index;
}

/// Sorts best-first under hit_before (deterministic total order).
void sort_hits(std::vector<LigandHit>& hits);

class VirtualScreeningEngine {
 public:
  VirtualScreeningEngine(const mol::Molecule& receptor, sched::NodeConfig node,
                         ScreeningOptions options = {});

  /// Docks one ligand; returns its hit record.
  [[nodiscard]] LigandHit dock(const mol::Molecule& ligand, std::size_t ligand_index = 0);

  /// Ensemble (flexible-ligand) docking: generates a torsional conformer
  /// ensemble (mol::generate_conformers) and docks every conformer rigidly;
  /// the returned hit is the best over the ensemble and `per_conformer`
  /// (when non-null) receives each conformer's best energy.
  [[nodiscard]] LigandHit dock_ensemble(const mol::Molecule& ligand,
                                        const mol::ConformerParams& conformers,
                                        std::vector<double>* per_conformer = nullptr,
                                        std::size_t ligand_index = 0);

  /// Screens a library; returns hits sorted by best score (best first).
  [[nodiscard]] std::vector<LigandHit> screen(const std::vector<mol::Molecule>& ligands);

  [[nodiscard]] const std::vector<surface::Spot>& spots() const noexcept { return spots_; }
  [[nodiscard]] const mol::Molecule& receptor() const noexcept { return receptor_; }
  [[nodiscard]] const ScreeningOptions& options() const noexcept { return options_; }

 private:
  const mol::Molecule& receptor_;
  sched::NodeConfig node_;
  ScreeningOptions options_;
  std::vector<surface::Spot> spots_;
};

}  // namespace metadock::vs
