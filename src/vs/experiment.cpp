#include "vs/experiment.h"

#include "meta/engine.h"
#include "sched/executor.h"
#include "util/table.h"

namespace metadock::vs {

namespace {

double estimate_seconds(const sched::NodeConfig& node, sched::Strategy strategy,
                        const meta::DockingProblem& problem,
                        const meta::MetaheuristicParams& params) {
  sched::ExecutorOptions opts;
  opts.strategy = strategy;
  sched::NodeExecutor exec(node, opts);
  return exec.estimate(problem, params).makespan_seconds;
}

ExperimentTable run_table(const mol::Dataset& dataset, bool jupiter_layout) {
  const mol::Molecule receptor = mol::make_dataset_receptor(dataset);
  const mol::Molecule ligand = mol::make_dataset_ligand(dataset);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);

  ExperimentTable table;
  table.dataset = dataset;
  table.spots = problem.spots.size();
  table.has_hom_system = jupiter_layout;
  table.title = std::string("PDB:") + dataset.pdb_id + " on " +
                (jupiter_layout ? "Jupiter" : "Hertz");

  const sched::NodeConfig node = jupiter_layout ? sched::jupiter() : sched::hertz();
  const sched::NodeConfig hom_node =
      jupiter_layout ? sched::jupiter_homogeneous() : sched::hertz();

  for (const meta::MetaheuristicParams& params : meta::table4_presets()) {
    ExperimentRow row;
    row.metaheuristic = params.name;
    row.openmp_s = estimate_seconds(node, sched::Strategy::kCpu, problem, params);
    if (jupiter_layout) {
      row.hom_system_s =
          estimate_seconds(hom_node, sched::Strategy::kHomogeneous, problem, params);
    }
    row.het_hom_s = estimate_seconds(node, sched::Strategy::kHomogeneous, problem, params);
    row.het_het_s = estimate_seconds(node, sched::Strategy::kHeterogeneous, problem, params);
    table.rows.push_back(row);
  }
  return table;
}

}  // namespace

ExperimentTable run_jupiter_table(const mol::Dataset& dataset) {
  return run_table(dataset, true);
}

ExperimentTable run_hertz_table(const mol::Dataset& dataset) {
  return run_table(dataset, false);
}

void print_experiment_table(const ExperimentTable& table) {
  using util::Table;
  Table t(table.title + "  (" + std::to_string(table.spots) + " surface spots)");
  if (table.has_hom_system) {
    t.header({"Metaheuristic", "OpenMP", "Homogeneous System",
              "Het.System Hom.Comp.", "Het.System Het.Comp.", "SPEED-UP Het vs Hom",
              "SPEED-UP OpenMP vs Het"});
  } else {
    t.header({"Metaheuristic", "OpenMP", "Hom. Computation", "Het. Computation",
              "SPEED-UP Het vs Hom", "SPEED-UP OpenMP vs Het"});
  }
  for (const ExperimentRow& r : table.rows) {
    if (table.has_hom_system) {
      t.row({r.metaheuristic, Table::num(r.openmp_s), Table::num(r.hom_system_s),
             Table::num(r.het_hom_s), Table::num(r.het_het_s),
             Table::num(r.speedup_het_vs_hom()), Table::num(r.speedup_openmp_vs_het())});
    } else {
      t.row({r.metaheuristic, Table::num(r.openmp_s), Table::num(r.het_hom_s),
             Table::num(r.het_het_s), Table::num(r.speedup_het_vs_hom()),
             Table::num(r.speedup_openmp_vs_het())});
    }
  }
  t.print();
}

}  // namespace metadock::vs
