// Long-running batch-screening service: the `metadock serve` loop.
//
// Jobs are small JSON files describing one screening campaign (receptor,
// library, metaheuristic, batching/retention, output stream).  The server
// accepts them from a watched directory (polled; lexicographic order, so
// producers control priority by filename) or from an stdin line protocol
// (one job-file path per line), and processes them strictly sequentially —
// each job already saturates the node through the fault-tolerant scheduler,
// so intra-job parallelism is where the hardware goes.
//
// Lifecycle: a directory job file is renamed to `<file>.done` on success
// and `<file>.failed` on error, so a rescan never reprocesses it.  A job
// interrupted by the stop hook (SIGINT in the CLI) keeps its original name
// and its flushed JSONL stream; the next serve run picks it up again and
// the batch screener resumes from the stream.  Progress and throughput are
// reported through the obs metrics registry (vs.batch.* counters,
// vs.job.<name>.progress gauges, vs.serve.* job counters).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "util/sync.h"
#include "vs/batch_screening.h"

namespace metadock::vs {

/// One screening campaign, parsed from a job file.  Every field has a
/// usable default, so a minimal job file is just `{}`.
struct JobSpec {
  /// Job label (metrics, logs); defaults to the job-file stem.
  std::string name;
  /// Path of the job file this spec came from (set by parse_job_file).
  std::string job_path;

  // -- Library -----------------------------------------------------------
  std::size_t ligand_count = 16;
  std::size_t min_atoms = 20;
  std::size_t max_atoms = 60;
  std::uint64_t library_seed = 7;

  // -- Receptor: synthetic (receptor_atoms > 0) or a paper dataset. ------
  std::string dataset = "2BSM";  // "2BSM" | "2BXG"
  std::size_t receptor_atoms = 0;
  std::uint64_t receptor_seed = 1;

  // -- Engine ------------------------------------------------------------
  std::string mh = "M1";         // M1..M4 | SA | TS
  std::string node = "hertz";    // hertz | jupiter
  std::string strategy = "het";  // het | hom | cpu | coop
  double scale = 0.005;
  std::uint64_t seed = 42;
  /// Population override (0 keeps the metaheuristic preset's value).
  int population_per_spot = 16;

  // -- Batching / retention / stream -------------------------------------
  std::size_t batch_size = 64;
  double top_percent = 100.0;
  /// JSONL stream; empty defaults to `<job file>.hits.jsonl`.
  std::string hits_path;
  /// Jobs are resumable by default: an interrupted job restarts from its
  /// flushed stream instead of re-docking the whole library.
  bool resume = true;
};

/// Parses a job file; unknown keys are ignored, malformed JSON or
/// out-of-range values throw std::runtime_error / std::invalid_argument.
[[nodiscard]] JobSpec parse_job_file(const std::string& path);

struct JobServerOptions {
  /// Watched directory for `*.job.json` files (directory mode).
  std::string jobs_dir;
  /// Exit once a scan finds no pending jobs (instead of polling forever).
  bool drain = false;
  /// Sleep between directory scans.  Pure duration — the server never
  /// reads a wall clock, so job processing stays deterministic.
  int poll_ms = 200;
  /// Stop after this many processed jobs (0 = unlimited).
  std::size_t max_jobs = 0;
  obs::Observer* observer = nullptr;
  /// Cooperative shutdown hook, forwarded into the batch screener: polled
  /// between jobs and between batches, so SIGINT finishes the in-flight
  /// batch, flushes the stream, and returns.
  std::function<bool()> should_stop;
  /// Sink for human-readable per-job progress lines (nullable = silent).
  std::ostream* log = nullptr;
};

struct JobOutcome {
  std::string name;
  std::string job_path;
  std::string hits_path;
  bool ok = false;
  /// True when the stop hook fired mid-job; the job file keeps its name
  /// and the next run resumes it.
  bool interrupted = false;
  std::string error;
  BatchScreeningResult result;
};

class JobServer {
 public:
  explicit JobServer(JobServerOptions options);

  /// Directory mode: scan, process, rename; repeat until drained (drain
  /// mode), stopped, or max_jobs is reached.
  std::vector<JobOutcome> serve_directory();

  /// Stdin protocol: one job-file path per line (blank lines ignored);
  /// returns at EOF, stop, or max_jobs.
  std::vector<JobOutcome> serve_stream(std::istream& in);

  /// Processes one job file end-to-end (parse, screen, rename).  Never
  /// throws: failures are reported in the outcome.
  [[nodiscard]] JobOutcome process_job(const std::string& path);

 private:
  [[nodiscard]] JobOutcome process_job_impl(const std::string& path) REQUIRES(serial_);

  [[nodiscard]] bool stop_requested() const REQUIRES(serial_) {
    return options_.should_stop && options_.should_stop();
  }

  /// Pending job files in `jobs_dir`, lexicographically sorted.
  [[nodiscard]] std::vector<std::string> scan_jobs_dir() const REQUIRES(serial_);

  /// Single-owner role (DESIGN.md §16): one serve loop drives the server,
  /// each public entry point claims the role for its duration.
  mutable util::Serial serial_;
  JobServerOptions options_ GUARDED_BY(serial_);
};

}  // namespace metadock::vs
