#include "vs/report.h"

#include "util/json.h"

namespace metadock::vs {

using util::JsonWriter;

namespace {

void emit_faults(JsonWriter& w, const sched::FaultReport& f) {
  w.key("faults").begin_object();
  w.key("transient_faults").value(f.transient_faults);
  w.key("retries").value(f.retries);
  w.key("devices_lost").value(f.devices_lost);
  w.key("resplits").value(f.resplits);
  w.key("rebalances").value(f.rebalances);
  w.key("cpu_fallback_conformations").value(f.cpu_fallback_conformations);
  // Exact form: the JSONL resume path parses this back and must recover
  // the bits (display consumers are unaffected by the longer digits).
  w.key("time_lost_seconds").value_exact(f.time_lost_seconds);
  w.key("degraded_to_cpu").value(f.degraded_to_cpu);
  w.key("lost_devices").begin_array();
  for (int d : f.lost_devices) w.value(d);
  w.end_array();
  w.end_object();
}

}  // namespace

std::string hits_to_json(const std::string& receptor_name, const std::string& node_name,
                         const std::vector<LigandHit>& hits) {
  JsonWriter w;
  w.begin_object();
  w.key("receptor").value(receptor_name);
  w.key("node").value(node_name);
  w.key("hits").begin_array();
  for (const LigandHit& h : hits) {
    w.begin_object();
    w.key("ligand").value(h.ligand_name);
    w.key("index").value(h.ligand_index);
    w.key("best_energy").value(h.best_score);
    w.key("spot").value(h.best_spot_id);
    w.key("pose").begin_object();
    w.key("x").value(static_cast<double>(h.best_pose.position.x));
    w.key("y").value(static_cast<double>(h.best_pose.position.y));
    w.key("z").value(static_cast<double>(h.best_pose.position.z));
    w.key("qw").value(static_cast<double>(h.best_pose.orientation.w));
    w.key("qx").value(static_cast<double>(h.best_pose.orientation.x));
    w.key("qy").value(static_cast<double>(h.best_pose.orientation.y));
    w.key("qz").value(static_cast<double>(h.best_pose.orientation.z));
    w.end_object();
    w.key("virtual_seconds").value(h.virtual_seconds);
    w.key("energy_joules").value(h.energy_joules);
    if (h.faults.any()) emit_faults(w, h.faults);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string score_map_to_json(const std::vector<SpotScore>& score_map,
                              const std::vector<SpotScore>& hot) {
  JsonWriter w;
  w.begin_object();
  auto emit = [&w](const std::vector<SpotScore>& entries) {
    w.begin_array();
    for (const SpotScore& s : entries) {
      w.begin_object();
      w.key("spot").value(s.spot_id);
      w.key("energy").value(s.best_energy);
      w.key("x").value(static_cast<double>(s.center.x));
      w.key("y").value(static_cast<double>(s.center.y));
      w.key("z").value(static_cast<double>(s.center.z));
      w.end_object();
    }
    w.end_array();
  };
  w.key("score_map");
  emit(score_map);
  w.key("hotspots");
  emit(hot);
  w.end_object();
  return w.str();
}

std::string hit_to_json_line(const LigandHit& h) {
  JsonWriter w;
  w.begin_object();
  w.key("index").value(h.ligand_index);
  w.key("ligand").value(h.ligand_name);
  w.key("best_energy").value_exact(h.best_score);
  w.key("spot").value(h.best_spot_id);
  w.key("pose").begin_object();
  w.key("x").value_exact(static_cast<double>(h.best_pose.position.x));
  w.key("y").value_exact(static_cast<double>(h.best_pose.position.y));
  w.key("z").value_exact(static_cast<double>(h.best_pose.position.z));
  w.key("qw").value_exact(static_cast<double>(h.best_pose.orientation.w));
  w.key("qx").value_exact(static_cast<double>(h.best_pose.orientation.x));
  w.key("qy").value_exact(static_cast<double>(h.best_pose.orientation.y));
  w.key("qz").value_exact(static_cast<double>(h.best_pose.orientation.z));
  w.end_object();
  w.key("virtual_seconds").value_exact(h.virtual_seconds);
  w.key("energy_joules").value_exact(h.energy_joules);
  if (h.faults.any()) emit_faults(w, h.faults);
  w.end_object();
  return w.str();
}

LigandHit hit_from_json(const util::JsonValue& record) {
  LigandHit h;
  h.ligand_index = record.at("index").as_uint64();
  h.ligand_name = record.at("ligand").as_string();
  h.best_score = record.at("best_energy").as_double();
  h.best_spot_id = static_cast<int>(record.at("spot").as_int64());
  const util::JsonValue& pose = record.at("pose");
  h.best_pose.position.x = static_cast<float>(pose.at("x").as_double());
  h.best_pose.position.y = static_cast<float>(pose.at("y").as_double());
  h.best_pose.position.z = static_cast<float>(pose.at("z").as_double());
  h.best_pose.orientation.w = static_cast<float>(pose.at("qw").as_double());
  h.best_pose.orientation.x = static_cast<float>(pose.at("qx").as_double());
  h.best_pose.orientation.y = static_cast<float>(pose.at("qy").as_double());
  h.best_pose.orientation.z = static_cast<float>(pose.at("qz").as_double());
  h.virtual_seconds = record.at("virtual_seconds").as_double();
  h.energy_joules = record.at("energy_joules").as_double();
  if (const util::JsonValue* f = record.find("faults")) {
    h.faults.transient_faults = f->at("transient_faults").as_uint64();
    h.faults.retries = f->at("retries").as_uint64();
    h.faults.resplits = f->at("resplits").as_uint64();
    h.faults.rebalances = f->at("rebalances").as_uint64();
    h.faults.cpu_fallback_conformations = f->at("cpu_fallback_conformations").as_uint64();
    h.faults.time_lost_seconds = f->at("time_lost_seconds").as_double();
    h.faults.degraded_to_cpu = f->at("degraded_to_cpu").as_bool();
    h.faults.devices_lost = f->at("devices_lost").as_uint64();
    for (const util::JsonValue& d : f->at("lost_devices").as_array()) {
      h.faults.lost_devices.push_back(static_cast<int>(d.as_int64()));
    }
  }
  return h;
}

std::string execution_to_json(const sched::ExecutionReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("node").value(report.node);
  w.key("strategy").value(std::string(sched::strategy_name(report.strategy)));
  w.key("makespan_seconds").value(report.makespan_seconds);
  w.key("warmup_seconds").value(report.warmup_seconds);
  w.key("energy_joules").value(report.energy_joules);
  w.key("imbalance_ratio").value(report.imbalance_ratio);
  w.key("balance_efficiency").value(report.balance_efficiency);
  w.key("devices").begin_array();
  for (const sched::DeviceReport& d : report.devices) {
    w.begin_object();
    w.key("name").value(d.name);
    w.key("conformations").value(d.conformations);
    w.key("share").value(d.share);
    w.key("percent").value(d.percent);
    w.key("busy_seconds").value(d.busy_seconds);
    w.key("scoring_seconds").value(d.scoring_seconds);
    w.key("busy_ratio").value(d.busy_ratio);
    w.key("energy_joules").value(d.energy_joules);
    w.end_object();
  }
  w.end_array();
  emit_faults(w, report.faults);
  w.end_object();
  return w.str();
}

}  // namespace metadock::vs
