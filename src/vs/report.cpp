#include "vs/report.h"

#include "util/json.h"

namespace metadock::vs {

using util::JsonWriter;

namespace {

void emit_faults(JsonWriter& w, const sched::FaultReport& f) {
  w.key("faults").begin_object();
  w.key("transient_faults").value(f.transient_faults);
  w.key("retries").value(f.retries);
  w.key("devices_lost").value(f.devices_lost);
  w.key("resplits").value(f.resplits);
  w.key("rebalances").value(f.rebalances);
  w.key("cpu_fallback_conformations").value(f.cpu_fallback_conformations);
  w.key("time_lost_seconds").value(f.time_lost_seconds);
  w.key("degraded_to_cpu").value(f.degraded_to_cpu);
  w.key("lost_devices").begin_array();
  for (int d : f.lost_devices) w.value(d);
  w.end_array();
  w.end_object();
}

}  // namespace

std::string hits_to_json(const std::string& receptor_name, const std::string& node_name,
                         const std::vector<LigandHit>& hits) {
  JsonWriter w;
  w.begin_object();
  w.key("receptor").value(receptor_name);
  w.key("node").value(node_name);
  w.key("hits").begin_array();
  for (const LigandHit& h : hits) {
    w.begin_object();
    w.key("ligand").value(h.ligand_name);
    w.key("index").value(h.ligand_index);
    w.key("best_energy").value(h.best_score);
    w.key("spot").value(h.best_spot_id);
    w.key("pose").begin_object();
    w.key("x").value(static_cast<double>(h.best_pose.position.x));
    w.key("y").value(static_cast<double>(h.best_pose.position.y));
    w.key("z").value(static_cast<double>(h.best_pose.position.z));
    w.key("qw").value(static_cast<double>(h.best_pose.orientation.w));
    w.key("qx").value(static_cast<double>(h.best_pose.orientation.x));
    w.key("qy").value(static_cast<double>(h.best_pose.orientation.y));
    w.key("qz").value(static_cast<double>(h.best_pose.orientation.z));
    w.end_object();
    w.key("virtual_seconds").value(h.virtual_seconds);
    w.key("energy_joules").value(h.energy_joules);
    if (h.faults.any()) emit_faults(w, h.faults);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string score_map_to_json(const std::vector<SpotScore>& score_map,
                              const std::vector<SpotScore>& hot) {
  JsonWriter w;
  w.begin_object();
  auto emit = [&w](const std::vector<SpotScore>& entries) {
    w.begin_array();
    for (const SpotScore& s : entries) {
      w.begin_object();
      w.key("spot").value(s.spot_id);
      w.key("energy").value(s.best_energy);
      w.key("x").value(static_cast<double>(s.center.x));
      w.key("y").value(static_cast<double>(s.center.y));
      w.key("z").value(static_cast<double>(s.center.z));
      w.end_object();
    }
    w.end_array();
  };
  w.key("score_map");
  emit(score_map);
  w.key("hotspots");
  emit(hot);
  w.end_object();
  return w.str();
}

std::string execution_to_json(const sched::ExecutionReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("node").value(report.node);
  w.key("strategy").value(std::string(sched::strategy_name(report.strategy)));
  w.key("makespan_seconds").value(report.makespan_seconds);
  w.key("warmup_seconds").value(report.warmup_seconds);
  w.key("energy_joules").value(report.energy_joules);
  w.key("imbalance_ratio").value(report.imbalance_ratio);
  w.key("balance_efficiency").value(report.balance_efficiency);
  w.key("devices").begin_array();
  for (const sched::DeviceReport& d : report.devices) {
    w.begin_object();
    w.key("name").value(d.name);
    w.key("conformations").value(d.conformations);
    w.key("share").value(d.share);
    w.key("percent").value(d.percent);
    w.key("busy_seconds").value(d.busy_seconds);
    w.key("scoring_seconds").value(d.scoring_seconds);
    w.key("busy_ratio").value(d.busy_ratio);
    w.key("energy_joules").value(d.energy_joules);
    w.end_object();
  }
  w.end_array();
  emit_faults(w, report.faults);
  w.end_object();
  return w.str();
}

}  // namespace metadock::vs
