// Multi-node screening — the paper's future-work scenario: "several
// computational nodes working together with the message-passing paradigm,
// and each node with several computational components".
//
// A 24-ligand library is screened across a simulated heterogeneous cluster
// (one Jupiter-class node + two Hertz-class nodes), comparing a static
// round-robin distribution against dynamic master/worker dispatch.
#include <cstdio>

#include "mol/library.h"
#include "mol/synth.h"
#include "sched/cluster.h"
#include "util/table.h"

int main() {
  using namespace metadock;

  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
  const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);

  // Library ligand sizes drive per-ligand cost (pair sum = R x L).
  mol::LibraryParams lib;
  lib.count = 24;
  lib.min_atoms = 20;
  lib.max_atoms = 60;
  std::vector<std::size_t> ligand_atoms;
  for (const mol::Molecule& m : mol::make_ligand_library(lib)) {
    ligand_atoms.push_back(m.size());
  }

  const std::vector<sched::NodeConfig> nodes = {sched::jupiter(), sched::hertz(),
                                                sched::hertz()};
  sched::ClusterSim sim(nodes);

  std::printf("cluster: %zu nodes, %zu-ligand library, receptor %s (%zu spots)\n\n",
              sim.node_count(), ligand_atoms.size(), receptor.name().c_str(),
              problem.spots.size());

  const meta::MetaheuristicParams params = meta::m3_scatter_light();
  for (const auto policy :
       {sched::DistributionPolicy::kStatic, sched::DistributionPolicy::kDynamic}) {
    const sched::ClusterReport r = sim.screen_estimate(problem, ligand_atoms, params, policy);
    util::Table table(policy == sched::DistributionPolicy::kStatic
                          ? "Static round-robin distribution"
                          : "Dynamic master/worker distribution");
    table.header({"node", "ligands", "busy seconds"});
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      table.row({nodes[n].name, std::to_string(r.ligands_per_node[n]),
                 util::Table::num(r.node_seconds[n])});
    }
    table.row({"MAKESPAN", "", util::Table::num(r.makespan_seconds)});
    table.row({"(comm total)", "", util::Table::num(r.comm_seconds, 4)});
    table.print();
    std::printf("\n");
  }

  std::printf("dynamic dispatch keeps the fast node busy: the makespan drops because\n"
              "no node waits on a statically mis-sized ligand share.\n");
  return 0;
}
