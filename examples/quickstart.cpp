// Quickstart: dock one ligand against a receptor over its whole surface.
//
// Demonstrates the minimal MetaDock flow:
//   1. get a receptor and a ligand (synthetic here; read_pdb_file works for
//      real PDB files),
//   2. build a VirtualScreeningEngine on a node configuration (here Hertz:
//      a Tesla K40c + GTX 580 behind the heterogeneous scheduler),
//   3. dock and inspect the best pose,
//   4. write the receptor-ligand complex to a PDB file (the "Figure 1"
//      artifact — open it in any molecular viewer).
#include <cstdio>
#include <fstream>

#include "geom/transform.h"
#include "mol/pdb.h"
#include "mol/synth.h"
#include "sched/node_config.h"
#include "vs/screening.h"

int main() {
  using namespace metadock;

  // A 2BSM-sized receptor (3264 atoms) and its 45-atom ligand.
  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
  const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
  std::printf("receptor: %s (%zu atoms)\n", receptor.name().c_str(), receptor.size());
  std::printf("ligand:   %s (%zu atoms)\n", ligand.name().c_str(), ligand.size());

  vs::ScreeningOptions options;
  options.params = meta::m3_scatter_light();  // light local search preset
  options.scale = 0.02;                       // quick demo run (4 generations)
  options.exec.strategy = sched::Strategy::kHeterogeneous;

  vs::VirtualScreeningEngine engine(receptor, sched::hertz(), options);
  std::printf("surface spots detected: %zu\n", engine.spots().size());

  const vs::LigandHit hit = engine.dock(ligand);
  std::printf("\nbest binding energy: %.3f kcal/mol at spot %d\n", hit.best_score,
              hit.best_spot_id);
  std::printf("pose position: (%.2f, %.2f, %.2f) A\n",
              static_cast<double>(hit.best_pose.position.x),
              static_cast<double>(hit.best_pose.position.y),
              static_cast<double>(hit.best_pose.position.z));
  std::printf("virtual time on Hertz: %.3f s (modeled energy %.0f J)\n",
              hit.virtual_seconds, hit.energy_joules);

  // Write the docked complex: receptor chain A, posed ligand chain B.
  mol::Molecule posed = ligand;
  posed.transform({hit.best_pose.orientation, hit.best_pose.position});
  std::ofstream out("quickstart_complex.pdb");
  mol::write_complex_pdb(out, receptor, posed);
  std::printf("\nwrote quickstart_complex.pdb\n");
  return 0;
}
