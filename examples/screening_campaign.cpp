// Screening campaign: rank a ligand library against one receptor.
//
// This is the workload the paper's introduction motivates — "large
// libraries of small molecules (ligands) are explored to search for the
// structures which best bind to the receptor".  A synthetic library of
// drug-sized ligands is screened over the whole 2BSM-sized receptor
// surface on the Jupiter node (4x GTX 590 + 2x Tesla C2075) and the hits
// are ranked by best binding energy.
#include <cstdio>

#include "mol/library.h"
#include "mol/synth.h"
#include "sched/node_config.h"
#include "util/table.h"
#include "vs/screening.h"

int main() {
  using namespace metadock;

  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);

  mol::LibraryParams lib_params;
  lib_params.count = 4;
  lib_params.min_atoms = 20;
  lib_params.max_atoms = 50;
  const std::vector<mol::Molecule> library = mol::make_ligand_library(lib_params);

  vs::ScreeningOptions options;
  options.params = meta::m1_genetic();
  options.params.population_per_spot = 16;  // demo-sized population
  options.scale = 0.004;                    // 3 generations per ligand
  options.exec.strategy = sched::Strategy::kHeterogeneous;

  vs::VirtualScreeningEngine engine(receptor, sched::jupiter(), options);
  std::printf("screening %zu ligands against %s over %zu spots on Jupiter...\n\n",
              library.size(), receptor.name().c_str(), engine.spots().size());

  const std::vector<vs::LigandHit> hits = engine.screen(library);

  util::Table table("Virtual screening hit list (best first)");
  table.header({"rank", "ligand", "atoms", "best energy", "spot", "virtual s", "energy J"});
  int rank = 1;
  for (const vs::LigandHit& h : hits) {
    table.row({std::to_string(rank++), h.ligand_name,
               std::to_string(library[h.ligand_index].size()),
               util::Table::num(h.best_score, 3), std::to_string(h.best_spot_id),
               util::Table::num(h.virtual_seconds, 3),
               util::Table::num(h.energy_joules, 0)});
  }
  table.print();

  std::printf("\nbest candidate: %s (%.3f kcal/mol)\n", hits.front().ligand_name.c_str(),
              hits.front().best_score);
  return 0;
}
