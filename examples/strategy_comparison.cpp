// Strategy comparison: the same docking run under all four execution
// strategies of the paper, on both evaluation nodes.
//
// Shows the two headline behaviours side by side:
//   * on Hertz (Kepler + Fermi) the heterogeneous algorithm is ~1.5x the
//     homogeneous split;
//   * on Jupiter (six near-identical Fermi cards) it is nearly neutral;
// and verifies that every strategy returns the *same* best energy — the
// split changes who computes, never what is computed.
#include <cstdio>

#include "mol/synth.h"
#include "sched/executor.h"
#include "util/table.h"

int main() {
  using namespace metadock;

  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BSM);
  const mol::Molecule ligand = mol::make_dataset_ligand(mol::kDataset2BSM);
  const meta::DockingProblem problem = meta::make_problem(receptor, ligand);

  // Short real run: quality numbers are genuine; the full-length timing
  // column comes from the trace replay at paper scale.
  meta::MetaheuristicParams run_params = meta::m2_scatter_full();
  run_params.population_per_spot = 8;  // demo-sized population
  run_params.generations = 2;
  const meta::MetaheuristicParams paper_params = meta::m2_scatter_full();

  for (const sched::NodeConfig& node : {sched::hertz(), sched::jupiter()}) {
    util::Table table("Node: " + node.name + "  (dataset 2BSM, metaheuristic M2, " +
                      std::to_string(problem.spots.size()) + " spots)");
    table.header({"strategy", "best energy (short run)", "paper-scale time s", "warm-up s"});
    for (const sched::Strategy s :
         {sched::Strategy::kCpu, sched::Strategy::kHomogeneous,
          sched::Strategy::kHeterogeneous, sched::Strategy::kCooperative}) {
      sched::ExecutorOptions opts;
      opts.strategy = s;
      sched::NodeExecutor exec(node, opts);
      const sched::ExecutionReport real = exec.run(problem, run_params);
      sched::NodeExecutor exec2(node, opts);
      const sched::ExecutionReport est = exec2.estimate(problem, paper_params);
      table.row({std::string(sched::strategy_name(s)),
                 util::Table::num(real.result.best.score, 4),
                 util::Table::num(est.makespan_seconds, 2),
                 util::Table::num(est.warmup_seconds, 4)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("note: the best energy column is identical across strategies by design —\n"
              "work distribution never changes the science.\n");
  return 0;
}
