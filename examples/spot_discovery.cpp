// Spot discovery: walk through the surface-analysis stage of BINDSURF-style
// blind docking.
//
// The paper's method "divides the whole protein surface into arbitrary and
// independent regions (or spots) ... identified by finding out a specific
// type of atoms in the protein".  This example shows each step on the
// 2BXG-sized receptor: neighbour-count exposure, polar-seed filtering,
// clustering into spots, and writes the spot anchors to a PDB file so they
// can be inspected over the receptor in a viewer.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "mol/pdb.h"
#include "mol/synth.h"
#include "surface/spots.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace metadock;

  const mol::Molecule receptor = mol::make_dataset_receptor(mol::kDataset2BXG);
  std::printf("receptor %s: %zu atoms, radius %.1f A\n", receptor.name().c_str(),
              receptor.size(), static_cast<double>(receptor.radius_about_centroid()));

  surface::SpotParams params;  // library defaults

  // Stage 1: exposure signal (neighbour counts within the probe radius).
  const std::vector<int> counts = surface::neighbour_counts(receptor, params.probe_radius);
  util::StatAccumulator stat;
  for (int c : counts) stat.add(c);
  std::printf("\nexposure probe %.1f A: neighbour counts mean %.1f (min %d, max %d)\n",
              static_cast<double>(params.probe_radius), stat.mean(),
              static_cast<int>(stat.min()), static_cast<int>(stat.max()));

  // Stage 2: exposed polar atoms seed the spots.
  const auto seeds = surface::exposed_atoms(receptor, params);
  std::printf("exposed polar (N/O) atoms below %.0f%% of mean: %zu\n",
              params.exposure_fraction * 100.0, seeds.size());

  // Stage 3: cluster seeds into independent spots.
  const std::vector<surface::Spot> spots = surface::find_spots(receptor, params);
  std::printf("clustered into %zu spots (cluster radius %.1f A)\n\n", spots.size(),
              static_cast<double>(params.cluster_radius));

  util::Table table("Largest spots (by merged seed count)");
  table.header({"spot", "support", "center x", "y", "z"});
  std::vector<surface::Spot> by_support = spots;
  std::sort(by_support.begin(), by_support.end(),
            [](const auto& a, const auto& b) { return a.support > b.support; });
  for (std::size_t i = 0; i < std::min<std::size_t>(8, by_support.size()); ++i) {
    const surface::Spot& s = by_support[i];
    table.row({std::to_string(s.id), std::to_string(s.support),
               util::Table::num(s.center.x, 1), util::Table::num(s.center.y, 1),
               util::Table::num(s.center.z, 1)});
  }
  table.print();

  // Write spot anchors as a pseudo-molecule for visualization.
  mol::Molecule anchors("spots");
  for (const surface::Spot& s : spots) anchors.add_atom(mol::Element::kP, s.center);
  std::ofstream out("spot_anchors.pdb");
  mol::write_complex_pdb(out, receptor, anchors);
  std::printf("\nwrote spot_anchors.pdb (receptor chain A, spot anchors chain B)\n");
  return 0;
}
