# Empty dependencies file for metadock_cpusim.
# This may be replaced when dependencies are built.
