file(REMOVE_RECURSE
  "libmetadock_cpusim.a"
)
