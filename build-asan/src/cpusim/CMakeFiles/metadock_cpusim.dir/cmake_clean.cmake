file(REMOVE_RECURSE
  "CMakeFiles/metadock_cpusim.dir/cpu_engine.cpp.o"
  "CMakeFiles/metadock_cpusim.dir/cpu_engine.cpp.o.d"
  "CMakeFiles/metadock_cpusim.dir/cpu_spec.cpp.o"
  "CMakeFiles/metadock_cpusim.dir/cpu_spec.cpp.o.d"
  "libmetadock_cpusim.a"
  "libmetadock_cpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_cpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
