file(REMOVE_RECURSE
  "CMakeFiles/metadock_geom.dir/cell_grid.cpp.o"
  "CMakeFiles/metadock_geom.dir/cell_grid.cpp.o.d"
  "CMakeFiles/metadock_geom.dir/quat.cpp.o"
  "CMakeFiles/metadock_geom.dir/quat.cpp.o.d"
  "libmetadock_geom.a"
  "libmetadock_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
