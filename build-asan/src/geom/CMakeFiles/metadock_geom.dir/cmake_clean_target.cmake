file(REMOVE_RECURSE
  "libmetadock_geom.a"
)
