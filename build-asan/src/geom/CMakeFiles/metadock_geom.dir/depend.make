# Empty dependencies file for metadock_geom.
# This may be replaced when dependencies are built.
