file(REMOVE_RECURSE
  "libmetadock_vs.a"
)
