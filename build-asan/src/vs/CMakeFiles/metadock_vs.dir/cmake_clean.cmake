file(REMOVE_RECURSE
  "CMakeFiles/metadock_vs.dir/experiment.cpp.o"
  "CMakeFiles/metadock_vs.dir/experiment.cpp.o.d"
  "CMakeFiles/metadock_vs.dir/hotspots.cpp.o"
  "CMakeFiles/metadock_vs.dir/hotspots.cpp.o.d"
  "CMakeFiles/metadock_vs.dir/report.cpp.o"
  "CMakeFiles/metadock_vs.dir/report.cpp.o.d"
  "CMakeFiles/metadock_vs.dir/screening.cpp.o"
  "CMakeFiles/metadock_vs.dir/screening.cpp.o.d"
  "libmetadock_vs.a"
  "libmetadock_vs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_vs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
