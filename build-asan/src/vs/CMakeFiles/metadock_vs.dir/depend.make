# Empty dependencies file for metadock_vs.
# This may be replaced when dependencies are built.
