# CMake generated Testfile for 
# Source directory: /root/repo/src/vs
# Build directory: /root/repo/build-asan/src/vs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
