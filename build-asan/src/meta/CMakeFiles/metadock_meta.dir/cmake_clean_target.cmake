file(REMOVE_RECURSE
  "libmetadock_meta.a"
)
