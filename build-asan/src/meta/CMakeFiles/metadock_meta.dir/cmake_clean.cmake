file(REMOVE_RECURSE
  "CMakeFiles/metadock_meta.dir/engine.cpp.o"
  "CMakeFiles/metadock_meta.dir/engine.cpp.o.d"
  "CMakeFiles/metadock_meta.dir/params.cpp.o"
  "CMakeFiles/metadock_meta.dir/params.cpp.o.d"
  "CMakeFiles/metadock_meta.dir/sampler.cpp.o"
  "CMakeFiles/metadock_meta.dir/sampler.cpp.o.d"
  "libmetadock_meta.a"
  "libmetadock_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
