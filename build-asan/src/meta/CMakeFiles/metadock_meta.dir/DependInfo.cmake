
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/engine.cpp" "src/meta/CMakeFiles/metadock_meta.dir/engine.cpp.o" "gcc" "src/meta/CMakeFiles/metadock_meta.dir/engine.cpp.o.d"
  "/root/repo/src/meta/params.cpp" "src/meta/CMakeFiles/metadock_meta.dir/params.cpp.o" "gcc" "src/meta/CMakeFiles/metadock_meta.dir/params.cpp.o.d"
  "/root/repo/src/meta/sampler.cpp" "src/meta/CMakeFiles/metadock_meta.dir/sampler.cpp.o" "gcc" "src/meta/CMakeFiles/metadock_meta.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/scoring/CMakeFiles/metadock_scoring.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/surface/CMakeFiles/metadock_surface.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/metadock_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mol/CMakeFiles/metadock_mol.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geom/CMakeFiles/metadock_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
