# Empty dependencies file for metadock_meta.
# This may be replaced when dependencies are built.
