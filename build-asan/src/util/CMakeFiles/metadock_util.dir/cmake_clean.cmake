file(REMOVE_RECURSE
  "CMakeFiles/metadock_util.dir/args.cpp.o"
  "CMakeFiles/metadock_util.dir/args.cpp.o.d"
  "CMakeFiles/metadock_util.dir/env.cpp.o"
  "CMakeFiles/metadock_util.dir/env.cpp.o.d"
  "CMakeFiles/metadock_util.dir/json.cpp.o"
  "CMakeFiles/metadock_util.dir/json.cpp.o.d"
  "CMakeFiles/metadock_util.dir/log.cpp.o"
  "CMakeFiles/metadock_util.dir/log.cpp.o.d"
  "CMakeFiles/metadock_util.dir/rng.cpp.o"
  "CMakeFiles/metadock_util.dir/rng.cpp.o.d"
  "CMakeFiles/metadock_util.dir/table.cpp.o"
  "CMakeFiles/metadock_util.dir/table.cpp.o.d"
  "CMakeFiles/metadock_util.dir/thread_pool.cpp.o"
  "CMakeFiles/metadock_util.dir/thread_pool.cpp.o.d"
  "libmetadock_util.a"
  "libmetadock_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
