# Empty dependencies file for metadock_util.
# This may be replaced when dependencies are built.
