file(REMOVE_RECURSE
  "libmetadock_util.a"
)
