# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("mol")
subdirs("surface")
subdirs("scoring")
subdirs("gpusim")
subdirs("cpusim")
subdirs("meta")
subdirs("sched")
subdirs("vs")
