file(REMOVE_RECURSE
  "CMakeFiles/metadock_sched.dir/cluster.cpp.o"
  "CMakeFiles/metadock_sched.dir/cluster.cpp.o.d"
  "CMakeFiles/metadock_sched.dir/executor.cpp.o"
  "CMakeFiles/metadock_sched.dir/executor.cpp.o.d"
  "CMakeFiles/metadock_sched.dir/multi_gpu.cpp.o"
  "CMakeFiles/metadock_sched.dir/multi_gpu.cpp.o.d"
  "CMakeFiles/metadock_sched.dir/node_config.cpp.o"
  "CMakeFiles/metadock_sched.dir/node_config.cpp.o.d"
  "CMakeFiles/metadock_sched.dir/partition.cpp.o"
  "CMakeFiles/metadock_sched.dir/partition.cpp.o.d"
  "libmetadock_sched.a"
  "libmetadock_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
