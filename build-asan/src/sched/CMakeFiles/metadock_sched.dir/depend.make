# Empty dependencies file for metadock_sched.
# This may be replaced when dependencies are built.
