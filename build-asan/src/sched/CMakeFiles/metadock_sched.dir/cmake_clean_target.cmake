file(REMOVE_RECURSE
  "libmetadock_sched.a"
)
