file(REMOVE_RECURSE
  "libmetadock_surface.a"
)
