# Empty dependencies file for metadock_surface.
# This may be replaced when dependencies are built.
