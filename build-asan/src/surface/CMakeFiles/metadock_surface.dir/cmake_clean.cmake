file(REMOVE_RECURSE
  "CMakeFiles/metadock_surface.dir/spots.cpp.o"
  "CMakeFiles/metadock_surface.dir/spots.cpp.o.d"
  "libmetadock_surface.a"
  "libmetadock_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
