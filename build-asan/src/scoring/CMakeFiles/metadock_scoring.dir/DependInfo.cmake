
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scoring/grid_scorer.cpp" "src/scoring/CMakeFiles/metadock_scoring.dir/grid_scorer.cpp.o" "gcc" "src/scoring/CMakeFiles/metadock_scoring.dir/grid_scorer.cpp.o.d"
  "/root/repo/src/scoring/lennard_jones.cpp" "src/scoring/CMakeFiles/metadock_scoring.dir/lennard_jones.cpp.o" "gcc" "src/scoring/CMakeFiles/metadock_scoring.dir/lennard_jones.cpp.o.d"
  "/root/repo/src/scoring/pair_params.cpp" "src/scoring/CMakeFiles/metadock_scoring.dir/pair_params.cpp.o" "gcc" "src/scoring/CMakeFiles/metadock_scoring.dir/pair_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/mol/CMakeFiles/metadock_mol.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geom/CMakeFiles/metadock_geom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/metadock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
