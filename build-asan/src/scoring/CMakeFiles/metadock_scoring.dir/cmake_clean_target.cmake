file(REMOVE_RECURSE
  "libmetadock_scoring.a"
)
