# Empty dependencies file for metadock_scoring.
# This may be replaced when dependencies are built.
