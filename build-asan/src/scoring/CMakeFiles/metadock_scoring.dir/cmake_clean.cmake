file(REMOVE_RECURSE
  "CMakeFiles/metadock_scoring.dir/grid_scorer.cpp.o"
  "CMakeFiles/metadock_scoring.dir/grid_scorer.cpp.o.d"
  "CMakeFiles/metadock_scoring.dir/lennard_jones.cpp.o"
  "CMakeFiles/metadock_scoring.dir/lennard_jones.cpp.o.d"
  "CMakeFiles/metadock_scoring.dir/pair_params.cpp.o"
  "CMakeFiles/metadock_scoring.dir/pair_params.cpp.o.d"
  "libmetadock_scoring.a"
  "libmetadock_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
