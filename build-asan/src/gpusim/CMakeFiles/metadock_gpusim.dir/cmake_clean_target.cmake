file(REMOVE_RECURSE
  "libmetadock_gpusim.a"
)
