
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cost_model.cpp" "src/gpusim/CMakeFiles/metadock_gpusim.dir/cost_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/metadock_gpusim.dir/cost_model.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/metadock_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/metadock_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/device_db.cpp" "src/gpusim/CMakeFiles/metadock_gpusim.dir/device_db.cpp.o" "gcc" "src/gpusim/CMakeFiles/metadock_gpusim.dir/device_db.cpp.o.d"
  "/root/repo/src/gpusim/device_spec.cpp" "src/gpusim/CMakeFiles/metadock_gpusim.dir/device_spec.cpp.o" "gcc" "src/gpusim/CMakeFiles/metadock_gpusim.dir/device_spec.cpp.o.d"
  "/root/repo/src/gpusim/fault_plan.cpp" "src/gpusim/CMakeFiles/metadock_gpusim.dir/fault_plan.cpp.o" "gcc" "src/gpusim/CMakeFiles/metadock_gpusim.dir/fault_plan.cpp.o.d"
  "/root/repo/src/gpusim/scoring_kernel.cpp" "src/gpusim/CMakeFiles/metadock_gpusim.dir/scoring_kernel.cpp.o" "gcc" "src/gpusim/CMakeFiles/metadock_gpusim.dir/scoring_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/scoring/CMakeFiles/metadock_scoring.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/metadock_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mol/CMakeFiles/metadock_mol.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geom/CMakeFiles/metadock_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
