# Empty dependencies file for metadock_gpusim.
# This may be replaced when dependencies are built.
