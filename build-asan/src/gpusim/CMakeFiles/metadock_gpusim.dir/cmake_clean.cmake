file(REMOVE_RECURSE
  "CMakeFiles/metadock_gpusim.dir/cost_model.cpp.o"
  "CMakeFiles/metadock_gpusim.dir/cost_model.cpp.o.d"
  "CMakeFiles/metadock_gpusim.dir/device.cpp.o"
  "CMakeFiles/metadock_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/metadock_gpusim.dir/device_db.cpp.o"
  "CMakeFiles/metadock_gpusim.dir/device_db.cpp.o.d"
  "CMakeFiles/metadock_gpusim.dir/device_spec.cpp.o"
  "CMakeFiles/metadock_gpusim.dir/device_spec.cpp.o.d"
  "CMakeFiles/metadock_gpusim.dir/fault_plan.cpp.o"
  "CMakeFiles/metadock_gpusim.dir/fault_plan.cpp.o.d"
  "CMakeFiles/metadock_gpusim.dir/scoring_kernel.cpp.o"
  "CMakeFiles/metadock_gpusim.dir/scoring_kernel.cpp.o.d"
  "libmetadock_gpusim.a"
  "libmetadock_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
