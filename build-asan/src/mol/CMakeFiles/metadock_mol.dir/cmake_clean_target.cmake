file(REMOVE_RECURSE
  "libmetadock_mol.a"
)
