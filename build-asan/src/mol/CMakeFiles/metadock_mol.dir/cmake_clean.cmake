file(REMOVE_RECURSE
  "CMakeFiles/metadock_mol.dir/atom.cpp.o"
  "CMakeFiles/metadock_mol.dir/atom.cpp.o.d"
  "CMakeFiles/metadock_mol.dir/bonds.cpp.o"
  "CMakeFiles/metadock_mol.dir/bonds.cpp.o.d"
  "CMakeFiles/metadock_mol.dir/conformers.cpp.o"
  "CMakeFiles/metadock_mol.dir/conformers.cpp.o.d"
  "CMakeFiles/metadock_mol.dir/library.cpp.o"
  "CMakeFiles/metadock_mol.dir/library.cpp.o.d"
  "CMakeFiles/metadock_mol.dir/molecule.cpp.o"
  "CMakeFiles/metadock_mol.dir/molecule.cpp.o.d"
  "CMakeFiles/metadock_mol.dir/pdb.cpp.o"
  "CMakeFiles/metadock_mol.dir/pdb.cpp.o.d"
  "CMakeFiles/metadock_mol.dir/synth.cpp.o"
  "CMakeFiles/metadock_mol.dir/synth.cpp.o.d"
  "libmetadock_mol.a"
  "libmetadock_mol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock_mol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
