
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mol/atom.cpp" "src/mol/CMakeFiles/metadock_mol.dir/atom.cpp.o" "gcc" "src/mol/CMakeFiles/metadock_mol.dir/atom.cpp.o.d"
  "/root/repo/src/mol/bonds.cpp" "src/mol/CMakeFiles/metadock_mol.dir/bonds.cpp.o" "gcc" "src/mol/CMakeFiles/metadock_mol.dir/bonds.cpp.o.d"
  "/root/repo/src/mol/conformers.cpp" "src/mol/CMakeFiles/metadock_mol.dir/conformers.cpp.o" "gcc" "src/mol/CMakeFiles/metadock_mol.dir/conformers.cpp.o.d"
  "/root/repo/src/mol/library.cpp" "src/mol/CMakeFiles/metadock_mol.dir/library.cpp.o" "gcc" "src/mol/CMakeFiles/metadock_mol.dir/library.cpp.o.d"
  "/root/repo/src/mol/molecule.cpp" "src/mol/CMakeFiles/metadock_mol.dir/molecule.cpp.o" "gcc" "src/mol/CMakeFiles/metadock_mol.dir/molecule.cpp.o.d"
  "/root/repo/src/mol/pdb.cpp" "src/mol/CMakeFiles/metadock_mol.dir/pdb.cpp.o" "gcc" "src/mol/CMakeFiles/metadock_mol.dir/pdb.cpp.o.d"
  "/root/repo/src/mol/synth.cpp" "src/mol/CMakeFiles/metadock_mol.dir/synth.cpp.o" "gcc" "src/mol/CMakeFiles/metadock_mol.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/geom/CMakeFiles/metadock_geom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/metadock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
