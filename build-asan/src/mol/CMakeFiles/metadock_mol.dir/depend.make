# Empty dependencies file for metadock_mol.
# This may be replaced when dependencies are built.
