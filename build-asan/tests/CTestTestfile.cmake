# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/util_test[1]_include.cmake")
include("/root/repo/build-asan/tests/geom_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mol_test[1]_include.cmake")
include("/root/repo/build-asan/tests/surface_test[1]_include.cmake")
include("/root/repo/build-asan/tests/scoring_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/cpusim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/meta_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sched_test[1]_include.cmake")
include("/root/repo/build-asan/tests/vs_test[1]_include.cmake")
