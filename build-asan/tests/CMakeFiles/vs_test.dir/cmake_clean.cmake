file(REMOVE_RECURSE
  "CMakeFiles/vs_test.dir/vs/experiment_test.cpp.o"
  "CMakeFiles/vs_test.dir/vs/experiment_test.cpp.o.d"
  "CMakeFiles/vs_test.dir/vs/hotspots_test.cpp.o"
  "CMakeFiles/vs_test.dir/vs/hotspots_test.cpp.o.d"
  "CMakeFiles/vs_test.dir/vs/report_test.cpp.o"
  "CMakeFiles/vs_test.dir/vs/report_test.cpp.o.d"
  "CMakeFiles/vs_test.dir/vs/screening_test.cpp.o"
  "CMakeFiles/vs_test.dir/vs/screening_test.cpp.o.d"
  "vs_test"
  "vs_test.pdb"
  "vs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
