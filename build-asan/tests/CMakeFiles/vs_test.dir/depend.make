# Empty dependencies file for vs_test.
# This may be replaced when dependencies are built.
