# Empty dependencies file for cpusim_test.
# This may be replaced when dependencies are built.
