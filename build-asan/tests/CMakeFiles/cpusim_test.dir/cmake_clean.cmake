file(REMOVE_RECURSE
  "CMakeFiles/cpusim_test.dir/cpusim/cpu_engine_test.cpp.o"
  "CMakeFiles/cpusim_test.dir/cpusim/cpu_engine_test.cpp.o.d"
  "CMakeFiles/cpusim_test.dir/cpusim/cpu_spec_test.cpp.o"
  "CMakeFiles/cpusim_test.dir/cpusim/cpu_spec_test.cpp.o.d"
  "cpusim_test"
  "cpusim_test.pdb"
  "cpusim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpusim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
