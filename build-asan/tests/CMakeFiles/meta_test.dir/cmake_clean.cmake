file(REMOVE_RECURSE
  "CMakeFiles/meta_test.dir/meta/engine_test.cpp.o"
  "CMakeFiles/meta_test.dir/meta/engine_test.cpp.o.d"
  "CMakeFiles/meta_test.dir/meta/params_test.cpp.o"
  "CMakeFiles/meta_test.dir/meta/params_test.cpp.o.d"
  "CMakeFiles/meta_test.dir/meta/sampler_test.cpp.o"
  "CMakeFiles/meta_test.dir/meta/sampler_test.cpp.o.d"
  "CMakeFiles/meta_test.dir/meta/trace_test.cpp.o"
  "CMakeFiles/meta_test.dir/meta/trace_test.cpp.o.d"
  "meta_test"
  "meta_test.pdb"
  "meta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
