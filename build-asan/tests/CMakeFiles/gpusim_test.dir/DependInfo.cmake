
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gpusim/cost_model_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/cost_model_test.cpp.o.d"
  "/root/repo/tests/gpusim/device_db_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/device_db_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/device_db_test.cpp.o.d"
  "/root/repo/tests/gpusim/device_spec_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/device_spec_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/device_spec_test.cpp.o.d"
  "/root/repo/tests/gpusim/device_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/device_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/device_test.cpp.o.d"
  "/root/repo/tests/gpusim/fault_plan_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/fault_plan_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/fault_plan_test.cpp.o.d"
  "/root/repo/tests/gpusim/runtime_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/runtime_test.cpp.o.d"
  "/root/repo/tests/gpusim/scoring_kernel_test.cpp" "tests/CMakeFiles/gpusim_test.dir/gpusim/scoring_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/gpusim_test.dir/gpusim/scoring_kernel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/vs/CMakeFiles/metadock_vs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sched/CMakeFiles/metadock_sched.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/meta/CMakeFiles/metadock_meta.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gpusim/CMakeFiles/metadock_gpusim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpusim/CMakeFiles/metadock_cpusim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mol/CMakeFiles/metadock_mol.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/surface/CMakeFiles/metadock_surface.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/scoring/CMakeFiles/metadock_scoring.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geom/CMakeFiles/metadock_geom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/metadock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
