# Empty dependencies file for surface_test.
# This may be replaced when dependencies are built.
