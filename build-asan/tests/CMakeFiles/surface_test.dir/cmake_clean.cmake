file(REMOVE_RECURSE
  "CMakeFiles/surface_test.dir/surface/spots_test.cpp.o"
  "CMakeFiles/surface_test.dir/surface/spots_test.cpp.o.d"
  "surface_test"
  "surface_test.pdb"
  "surface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
