# Empty dependencies file for mol_test.
# This may be replaced when dependencies are built.
