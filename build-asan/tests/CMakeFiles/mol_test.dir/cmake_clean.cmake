file(REMOVE_RECURSE
  "CMakeFiles/mol_test.dir/mol/atom_test.cpp.o"
  "CMakeFiles/mol_test.dir/mol/atom_test.cpp.o.d"
  "CMakeFiles/mol_test.dir/mol/bonds_test.cpp.o"
  "CMakeFiles/mol_test.dir/mol/bonds_test.cpp.o.d"
  "CMakeFiles/mol_test.dir/mol/conformers_test.cpp.o"
  "CMakeFiles/mol_test.dir/mol/conformers_test.cpp.o.d"
  "CMakeFiles/mol_test.dir/mol/library_test.cpp.o"
  "CMakeFiles/mol_test.dir/mol/library_test.cpp.o.d"
  "CMakeFiles/mol_test.dir/mol/molecule_test.cpp.o"
  "CMakeFiles/mol_test.dir/mol/molecule_test.cpp.o.d"
  "CMakeFiles/mol_test.dir/mol/pdb_test.cpp.o"
  "CMakeFiles/mol_test.dir/mol/pdb_test.cpp.o.d"
  "CMakeFiles/mol_test.dir/mol/synth_test.cpp.o"
  "CMakeFiles/mol_test.dir/mol/synth_test.cpp.o.d"
  "mol_test"
  "mol_test.pdb"
  "mol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
