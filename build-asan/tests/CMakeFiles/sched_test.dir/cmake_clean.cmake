file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched/cluster_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/cluster_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/executor_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/executor_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/fault_tolerance_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/fault_tolerance_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/multi_gpu_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/multi_gpu_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/node_config_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/node_config_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/partition_property_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/partition_property_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/partition_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/partition_test.cpp.o.d"
  "sched_test"
  "sched_test.pdb"
  "sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
