file(REMOVE_RECURSE
  "CMakeFiles/metadock.dir/metadock_cli.cpp.o"
  "CMakeFiles/metadock.dir/metadock_cli.cpp.o.d"
  "metadock"
  "metadock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
