# Empty dependencies file for metadock.
# This may be replaced when dependencies are built.
