file(REMOVE_RECURSE
  "CMakeFiles/bench_table23_nodes.dir/bench_table23_nodes.cpp.o"
  "CMakeFiles/bench_table23_nodes.dir/bench_table23_nodes.cpp.o.d"
  "bench_table23_nodes"
  "bench_table23_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table23_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
