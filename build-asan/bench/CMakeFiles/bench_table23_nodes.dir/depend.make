# Empty dependencies file for bench_table23_nodes.
# This may be replaced when dependencies are built.
