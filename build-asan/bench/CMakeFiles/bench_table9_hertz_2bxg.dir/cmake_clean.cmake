file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_hertz_2bxg.dir/bench_table9_hertz_2bxg.cpp.o"
  "CMakeFiles/bench_table9_hertz_2bxg.dir/bench_table9_hertz_2bxg.cpp.o.d"
  "bench_table9_hertz_2bxg"
  "bench_table9_hertz_2bxg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_hertz_2bxg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
