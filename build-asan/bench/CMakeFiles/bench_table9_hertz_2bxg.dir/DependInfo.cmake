
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table9_hertz_2bxg.cpp" "bench/CMakeFiles/bench_table9_hertz_2bxg.dir/bench_table9_hertz_2bxg.cpp.o" "gcc" "bench/CMakeFiles/bench_table9_hertz_2bxg.dir/bench_table9_hertz_2bxg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/vs/CMakeFiles/metadock_vs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sched/CMakeFiles/metadock_sched.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/meta/CMakeFiles/metadock_meta.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gpusim/CMakeFiles/metadock_gpusim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpusim/CMakeFiles/metadock_cpusim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mol/CMakeFiles/metadock_mol.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/surface/CMakeFiles/metadock_surface.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/scoring/CMakeFiles/metadock_scoring.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geom/CMakeFiles/metadock_geom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/metadock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
