# Empty dependencies file for bench_table9_hertz_2bxg.
# This may be replaced when dependencies are built.
