# Empty dependencies file for bench_scoring_micro.
# This may be replaced when dependencies are built.
