file(REMOVE_RECURSE
  "CMakeFiles/bench_scoring_micro.dir/bench_scoring_micro.cpp.o"
  "CMakeFiles/bench_scoring_micro.dir/bench_scoring_micro.cpp.o.d"
  "bench_scoring_micro"
  "bench_scoring_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scoring_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
