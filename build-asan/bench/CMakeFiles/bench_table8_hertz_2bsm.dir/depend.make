# Empty dependencies file for bench_table8_hertz_2bsm.
# This may be replaced when dependencies are built.
