file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tiling.dir/bench_ablation_tiling.cpp.o"
  "CMakeFiles/bench_ablation_tiling.dir/bench_ablation_tiling.cpp.o.d"
  "bench_ablation_tiling"
  "bench_ablation_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
