# Empty dependencies file for bench_ablation_tiling.
# This may be replaced when dependencies are built.
