# Empty dependencies file for bench_ablation_mic.
# This may be replaced when dependencies are built.
