file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mic.dir/bench_ablation_mic.cpp.o"
  "CMakeFiles/bench_ablation_mic.dir/bench_ablation_mic.cpp.o.d"
  "bench_ablation_mic"
  "bench_ablation_mic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
