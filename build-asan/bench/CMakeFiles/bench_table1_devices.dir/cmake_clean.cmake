file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_devices.dir/bench_table1_devices.cpp.o"
  "CMakeFiles/bench_table1_devices.dir/bench_table1_devices.cpp.o.d"
  "bench_table1_devices"
  "bench_table1_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
