file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_warmup.dir/bench_ablation_warmup.cpp.o"
  "CMakeFiles/bench_ablation_warmup.dir/bench_ablation_warmup.cpp.o.d"
  "bench_ablation_warmup"
  "bench_ablation_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
