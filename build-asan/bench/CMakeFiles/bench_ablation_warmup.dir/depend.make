# Empty dependencies file for bench_ablation_warmup.
# This may be replaced when dependencies are built.
