# Empty dependencies file for bench_table4_metaheuristics.
# This may be replaced when dependencies are built.
