file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_metaheuristics.dir/bench_table4_metaheuristics.cpp.o"
  "CMakeFiles/bench_table4_metaheuristics.dir/bench_table4_metaheuristics.cpp.o.d"
  "bench_table4_metaheuristics"
  "bench_table4_metaheuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_metaheuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
