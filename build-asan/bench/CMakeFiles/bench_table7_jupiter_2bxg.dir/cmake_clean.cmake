file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_jupiter_2bxg.dir/bench_table7_jupiter_2bxg.cpp.o"
  "CMakeFiles/bench_table7_jupiter_2bxg.dir/bench_table7_jupiter_2bxg.cpp.o.d"
  "bench_table7_jupiter_2bxg"
  "bench_table7_jupiter_2bxg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_jupiter_2bxg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
