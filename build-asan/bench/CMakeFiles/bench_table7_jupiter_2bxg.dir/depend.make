# Empty dependencies file for bench_table7_jupiter_2bxg.
# This may be replaced when dependencies are built.
