# Empty dependencies file for bench_ablation_multinode.
# This may be replaced when dependencies are built.
