file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multinode.dir/bench_ablation_multinode.cpp.o"
  "CMakeFiles/bench_ablation_multinode.dir/bench_ablation_multinode.cpp.o.d"
  "bench_ablation_multinode"
  "bench_ablation_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
