# Empty dependencies file for bench_table6_jupiter_2bsm.
# This may be replaced when dependencies are built.
