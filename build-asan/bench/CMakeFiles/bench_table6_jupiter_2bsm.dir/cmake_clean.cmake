file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_jupiter_2bsm.dir/bench_table6_jupiter_2bsm.cpp.o"
  "CMakeFiles/bench_table6_jupiter_2bsm.dir/bench_table6_jupiter_2bsm.cpp.o.d"
  "bench_table6_jupiter_2bsm"
  "bench_table6_jupiter_2bsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_jupiter_2bsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
