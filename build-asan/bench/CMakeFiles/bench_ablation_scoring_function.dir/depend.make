# Empty dependencies file for bench_ablation_scoring_function.
# This may be replaced when dependencies are built.
