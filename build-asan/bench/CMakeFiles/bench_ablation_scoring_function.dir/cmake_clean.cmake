file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scoring_function.dir/bench_ablation_scoring_function.cpp.o"
  "CMakeFiles/bench_ablation_scoring_function.dir/bench_ablation_scoring_function.cpp.o.d"
  "bench_ablation_scoring_function"
  "bench_ablation_scoring_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scoring_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
