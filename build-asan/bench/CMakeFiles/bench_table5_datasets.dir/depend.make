# Empty dependencies file for bench_table5_datasets.
# This may be replaced when dependencies are built.
