# Empty dependencies file for screening_campaign.
# This may be replaced when dependencies are built.
