file(REMOVE_RECURSE
  "CMakeFiles/screening_campaign.dir/screening_campaign.cpp.o"
  "CMakeFiles/screening_campaign.dir/screening_campaign.cpp.o.d"
  "screening_campaign"
  "screening_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screening_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
