file(REMOVE_RECURSE
  "CMakeFiles/spot_discovery.dir/spot_discovery.cpp.o"
  "CMakeFiles/spot_discovery.dir/spot_discovery.cpp.o.d"
  "spot_discovery"
  "spot_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
