# Empty dependencies file for spot_discovery.
# This may be replaced when dependencies are built.
