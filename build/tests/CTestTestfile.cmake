# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/mol_test[1]_include.cmake")
include("/root/repo/build/tests/surface_test[1]_include.cmake")
include("/root/repo/build/tests/scoring_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/cpusim_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/vs_test[1]_include.cmake")
