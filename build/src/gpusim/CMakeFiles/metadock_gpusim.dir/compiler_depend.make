# Empty compiler generated dependencies file for metadock_gpusim.
# This may be replaced when dependencies are built.
