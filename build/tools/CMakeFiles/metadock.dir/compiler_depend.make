# Empty compiler generated dependencies file for metadock.
# This may be replaced when dependencies are built.
